//! The flat fabric occupancy index.
//!
//! §3.3–3.4 argue gather/release are cheap enough to run *at run time* —
//! which the simulator must not contradict. The switch fabric itself is
//! a lazily-populated map (correct for sparse programming state, wrong
//! for occupancy probes), so admission control used to rescan the whole
//! die through `HashMap`/`HashSet` lookups on every scheduler tick.
//! [`FabricIndex`] is the flat mirror those probes read instead: owner
//! tags and the defect set live in `Vec` slabs addressed `y * width +
//! x`, and the free-cluster count is maintained incrementally, so
//! `free_clusters` is O(1), point probes are one indexed load, and
//! region scans touch exactly the cells of the region.
//!
//! The index is a *mirror*, not the source of truth: the chip updates it
//! at the same funnels that mutate the switch fabric (reserve, release,
//! defect marking). The defect slab also replaces the chip's old
//! `HashSet<Coord>` — iteration ([`FabricIndex::defect_coords`]) is
//! row-major and therefore deterministic, where hash order was not.

use crate::coord::Coord;
use crate::switch::RegionTag;

/// Sentinel for "no owner" in the owner slab (tags are processor ids,
/// which never reach `u32::MAX`).
const NO_OWNER: u32 = u32::MAX;

/// A flat per-cluster occupancy index for a `width × height` die.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FabricIndex {
    width: u16,
    height: u16,
    /// Owner tag per cell, `NO_OWNER` when unowned.
    owner: Vec<u32>,
    /// Defect flag per cell.
    defect: Vec<bool>,
    /// Cells that are unowned and non-defective, maintained incrementally.
    free: usize,
    /// Defective cells, maintained incrementally.
    defects: usize,
}

impl FabricIndex {
    /// A fully-free index for a `width × height` grid.
    pub fn new(width: u16, height: u16) -> FabricIndex {
        let n = usize::from(width) * usize::from(height);
        FabricIndex {
            width,
            height,
            owner: vec![NO_OWNER; n],
            defect: vec![false; n],
            free: n,
            defects: 0,
        }
    }

    /// Grid width in clusters.
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Grid height in clusters.
    pub fn height(&self) -> u16 {
        self.height
    }

    fn idx(&self, c: Coord) -> Option<usize> {
        if c.x < self.width && c.y < self.height {
            Some(usize::from(c.y) * usize::from(self.width) + usize::from(c.x))
        } else {
            None
        }
    }

    fn coord_of(&self, i: usize) -> Coord {
        let w = usize::from(self.width);
        Coord::new((i % w) as u16, (i / w) as u16)
    }

    fn is_free_at(&self, i: usize) -> bool {
        self.owner[i] == NO_OWNER && !self.defect[i]
    }

    /// The owner tag of `c`, if any. Out-of-bounds cells have no owner.
    pub fn owner(&self, c: Coord) -> Option<RegionTag> {
        let i = self.idx(c)?;
        match self.owner[i] {
            NO_OWNER => None,
            tag => Some(RegionTag(tag)),
        }
    }

    /// Whether `c` is allocatable: on the die, unowned, non-defective.
    pub fn is_free(&self, c: Coord) -> bool {
        self.idx(c).is_some_and(|i| self.is_free_at(i))
    }

    /// Unowned, non-defective clusters — O(1).
    pub fn free_clusters(&self) -> usize {
        self.free
    }

    /// Assigns `c` to `tag`. Out-of-bounds coordinates are ignored (the
    /// fabric's own bounds checks are the authority on errors).
    pub fn set_owner(&mut self, c: Coord, tag: RegionTag) {
        if let Some(i) = self.idx(c) {
            if self.is_free_at(i) {
                self.free -= 1;
            }
            self.owner[i] = tag.0;
        }
    }

    /// Clears the owner of `c`, whoever held it.
    pub fn clear_owner(&mut self, c: Coord) {
        if let Some(i) = self.idx(c) {
            if self.owner[i] != NO_OWNER {
                self.owner[i] = NO_OWNER;
                if !self.defect[i] {
                    self.free += 1;
                }
            }
        }
    }

    /// Releases every cell owned by `tag`; returns how many were held.
    /// One linear pass over the slab — no per-cell map lookups.
    pub fn release_owner(&mut self, tag: RegionTag) -> usize {
        let mut released = 0;
        for i in 0..self.owner.len() {
            if self.owner[i] == tag.0 {
                self.owner[i] = NO_OWNER;
                if !self.defect[i] {
                    self.free += 1;
                }
                released += 1;
            }
        }
        released
    }

    /// Whether `c` is marked defective.
    pub fn is_defective(&self, c: Coord) -> bool {
        self.idx(c).is_some_and(|i| self.defect[i])
    }

    /// Marks `c` defective (idempotent).
    pub fn mark_defective(&mut self, c: Coord) {
        if let Some(i) = self.idx(c) {
            if !self.defect[i] {
                if self.is_free_at(i) {
                    self.free -= 1;
                }
                self.defect[i] = true;
                self.defects += 1;
            }
        }
    }

    /// Defective clusters on the die — O(1).
    pub fn defect_count(&self) -> usize {
        self.defects
    }

    /// Whether the `w × h` rectangle anchored at `origin` lies entirely
    /// on the die with every cell unowned and non-defective. Zero-sized
    /// rectangles are never free: a placement that asks for nothing is
    /// a caller bug, not an allocatable region.
    pub fn rect_is_free(&self, origin: Coord, w: u16, h: u16) -> bool {
        if w == 0 || h == 0 {
            return false;
        }
        if usize::from(origin.x) + usize::from(w) > usize::from(self.width)
            || usize::from(origin.y) + usize::from(h) > usize::from(self.height)
        {
            return false;
        }
        for dy in 0..h {
            let row = usize::from(origin.y + dy) * usize::from(self.width);
            for dx in 0..w {
                if !self.is_free_at(row + usize::from(origin.x + dx)) {
                    return false;
                }
            }
        }
        true
    }

    /// Row-major first-fit probe: the lowest `(y, x)` origin whose
    /// `w × h` rectangle is entirely free, or `None` when no such
    /// window exists. Deterministic by construction — placement passes
    /// lean on this to make compiled layouts reproducible.
    pub fn first_rect_fit(&self, w: u16, h: u16) -> Option<Coord> {
        if w == 0 || h == 0 || w > self.width || h > self.height {
            return None;
        }
        for y in 0..=(self.height - h) {
            for x in 0..=(self.width - w) {
                let origin = Coord::new(x, y);
                if self.rect_is_free(origin, w, h) {
                    return Some(origin);
                }
            }
        }
        None
    }

    /// Defective coordinates in row-major order — a deterministic view,
    /// unlike the hash-ordered set this slab replaced.
    pub fn defect_coords(&self) -> impl Iterator<Item = Coord> + '_ {
        self.defect
            .iter()
            .enumerate()
            .filter(|(_, &d)| d)
            .map(|(i, _)| self.coord_of(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_count_tracks_owners_and_defects() {
        let mut ix = FabricIndex::new(4, 3);
        assert_eq!(ix.free_clusters(), 12);
        ix.set_owner(Coord::new(1, 1), RegionTag(7));
        ix.set_owner(Coord::new(2, 1), RegionTag(7));
        assert_eq!(ix.free_clusters(), 10);
        assert_eq!(ix.owner(Coord::new(1, 1)), Some(RegionTag(7)));
        assert!(!ix.is_free(Coord::new(1, 1)));
        // Re-tagging an owned cell does not double-count.
        ix.set_owner(Coord::new(1, 1), RegionTag(9));
        assert_eq!(ix.free_clusters(), 10);
        ix.clear_owner(Coord::new(1, 1));
        assert_eq!(ix.free_clusters(), 11);
        assert_eq!(ix.release_owner(RegionTag(7)), 1);
        assert_eq!(ix.free_clusters(), 12);
    }

    #[test]
    fn defects_interact_with_ownership() {
        let mut ix = FabricIndex::new(2, 2);
        ix.mark_defective(Coord::new(0, 0));
        ix.mark_defective(Coord::new(0, 0)); // idempotent
        assert_eq!(ix.free_clusters(), 3);
        assert_eq!(ix.defect_count(), 1);
        // An owned cell going defective must not re-enter the free pool
        // when released.
        ix.set_owner(Coord::new(1, 1), RegionTag(3));
        ix.mark_defective(Coord::new(1, 1));
        assert_eq!(ix.release_owner(RegionTag(3)), 1);
        assert_eq!(ix.free_clusters(), 2);
        assert!(!ix.is_free(Coord::new(1, 1)));
    }

    #[test]
    fn defect_coords_are_row_major() {
        let mut ix = FabricIndex::new(3, 3);
        for c in [Coord::new(2, 2), Coord::new(0, 1), Coord::new(1, 0)] {
            ix.mark_defective(c);
        }
        let got: Vec<Coord> = ix.defect_coords().collect();
        assert_eq!(
            got,
            vec![Coord::new(1, 0), Coord::new(0, 1), Coord::new(2, 2)]
        );
    }

    #[test]
    fn rect_probes_respect_owners_defects_and_bounds() {
        let mut ix = FabricIndex::new(4, 3);
        assert!(ix.rect_is_free(Coord::new(0, 0), 4, 3));
        assert!(!ix.rect_is_free(Coord::new(0, 0), 5, 1)); // off the die
        assert!(!ix.rect_is_free(Coord::new(3, 2), 2, 1)); // overhangs
        assert!(!ix.rect_is_free(Coord::new(0, 0), 0, 2)); // zero-sized
        ix.mark_defective(Coord::new(1, 1));
        assert!(!ix.rect_is_free(Coord::new(0, 0), 2, 2));
        assert!(ix.rect_is_free(Coord::new(2, 0), 2, 2));
        ix.set_owner(Coord::new(2, 0), RegionTag(1));
        assert!(!ix.rect_is_free(Coord::new(2, 0), 2, 2));
    }

    #[test]
    fn first_rect_fit_scans_row_major_around_obstacles() {
        let mut ix = FabricIndex::new(4, 3);
        assert_eq!(ix.first_rect_fit(2, 2), Some(Coord::new(0, 0)));
        // Block the top-left candidate with a defect; the scan must
        // slide right along the same row before dropping down.
        ix.mark_defective(Coord::new(0, 0));
        assert_eq!(ix.first_rect_fit(2, 2), Some(Coord::new(1, 0)));
        // Fill row 0 entirely: next fit starts on row 1.
        for x in 0..4 {
            ix.set_owner(Coord::new(x, 0), RegionTag(5));
        }
        assert_eq!(ix.first_rect_fit(2, 2), Some(Coord::new(0, 1)));
        // Too tall / too wide for the die → no fit, not a panic.
        assert_eq!(ix.first_rect_fit(5, 1), None);
        assert_eq!(ix.first_rect_fit(1, 4), None);
        assert_eq!(ix.first_rect_fit(0, 1), None);
        // Saturate the die: nothing fits.
        for y in 0..3 {
            for x in 0..4 {
                ix.set_owner(Coord::new(x, y), RegionTag(9));
            }
        }
        assert_eq!(ix.first_rect_fit(1, 1), None);
    }

    #[test]
    fn out_of_bounds_probes_are_inert() {
        let mut ix = FabricIndex::new(2, 2);
        let outside = Coord::new(5, 5);
        ix.set_owner(outside, RegionTag(1));
        ix.mark_defective(outside);
        ix.clear_owner(outside);
        assert_eq!(ix.owner(outside), None);
        assert!(!ix.is_free(outside));
        assert!(!ix.is_defective(outside));
        assert_eq!(ix.free_clusters(), 4);
    }
}

//! Grid coordinates and directions.

use std::fmt;

/// A cluster coordinate on the chip grid. `x` grows eastward, `y` grows
/// southward (row-major, row 0 at the top). `layer` selects the die in a
/// 3D (chip-on-chip) stack — 0 for a planar chip.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Coord {
    /// Column.
    pub x: u16,
    /// Row.
    pub y: u16,
    /// Die layer (0 = bottom).
    pub layer: u8,
}

impl Coord {
    /// A planar (layer-0) coordinate.
    pub fn new(x: u16, y: u16) -> Coord {
        Coord { x, y, layer: 0 }
    }

    /// A coordinate on a stacked die.
    pub fn on_layer(x: u16, y: u16, layer: u8) -> Coord {
        Coord { x, y, layer }
    }

    /// Manhattan distance, counting a layer crossing as one hop (the 3D
    /// stack switch of Figure 6(d)).
    pub fn manhattan(self, other: Coord) -> u32 {
        let dx = (self.x as i32 - other.x as i32).unsigned_abs();
        let dy = (self.y as i32 - other.y as i32).unsigned_abs();
        let dl = (self.layer as i32 - other.layer as i32).unsigned_abs();
        dx + dy + dl
    }

    /// Whether `other` is one hop away (grid neighbour or directly
    /// above/below through the die stack).
    pub fn is_adjacent(self, other: Coord) -> bool {
        self.manhattan(other) == 1
    }

    /// The neighbour in direction `d`, if it does not underflow.
    pub fn step(self, d: Dir) -> Option<Coord> {
        match d {
            Dir::North => self.y.checked_sub(1).map(|y| Coord { y, ..self }),
            Dir::South => Some(Coord {
                y: self.y + 1,
                ..self
            }),
            Dir::West => self.x.checked_sub(1).map(|x| Coord { x, ..self }),
            Dir::East => Some(Coord {
                x: self.x + 1,
                ..self
            }),
            Dir::Up => Some(Coord {
                layer: self.layer + 1,
                ..self
            }),
            Dir::Down => self
                .layer
                .checked_sub(1)
                .map(|layer| Coord { layer, ..self }),
        }
    }

    /// The direction from `self` to an adjacent coordinate.
    pub fn dir_to(self, other: Coord) -> Option<Dir> {
        if !self.is_adjacent(other) {
            return None;
        }
        Some(if other.x > self.x {
            Dir::East
        } else if other.x < self.x {
            Dir::West
        } else if other.y > self.y {
            Dir::South
        } else if other.y < self.y {
            Dir::North
        } else if other.layer > self.layer {
            Dir::Up
        } else {
            Dir::Down
        })
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.layer == 0 {
            write!(f, "({},{})", self.x, self.y)
        } else {
            write!(f, "({},{},L{})", self.x, self.y, self.layer)
        }
    }
}

/// The six link directions of a (possibly die-stacked) cluster.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Dir {
    /// Toward row 0.
    North,
    /// Away from row 0.
    South,
    /// Toward column max.
    East,
    /// Toward column 0.
    West,
    /// To the die above (Figure 6(d)).
    Up,
    /// To the die below.
    Down,
}

impl Dir {
    /// All directions.
    pub const ALL: [Dir; 6] = [
        Dir::North,
        Dir::South,
        Dir::East,
        Dir::West,
        Dir::Up,
        Dir::Down,
    ];

    /// Dense index of the direction (for per-direction state arrays).
    pub fn index(self) -> usize {
        match self {
            Dir::North => 0,
            Dir::South => 1,
            Dir::East => 2,
            Dir::West => 3,
            Dir::Up => 4,
            Dir::Down => 5,
        }
    }

    /// The opposite direction.
    pub fn opposite(self) -> Dir {
        match self {
            Dir::North => Dir::South,
            Dir::South => Dir::North,
            Dir::East => Dir::West,
            Dir::West => Dir::East,
            Dir::Up => Dir::Down,
            Dir::Down => Dir::Up,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_and_adjacency() {
        let a = Coord::new(1, 1);
        assert_eq!(a.manhattan(Coord::new(4, 3)), 5);
        assert!(a.is_adjacent(Coord::new(1, 2)));
        assert!(a.is_adjacent(Coord::new(0, 1)));
        assert!(!a.is_adjacent(Coord::new(2, 2)));
        assert!(a.is_adjacent(Coord::on_layer(1, 1, 1)));
    }

    #[test]
    fn step_and_dir_roundtrip() {
        let c = Coord::on_layer(2, 2, 0);
        for d in Dir::ALL {
            if let Some(n) = c.step(d) {
                assert_eq!(c.dir_to(n), Some(d));
                assert_eq!(n.step(d.opposite()), Some(c));
            }
        }
        // Underflows.
        assert_eq!(Coord::new(0, 0).step(Dir::North), None);
        assert_eq!(Coord::new(0, 0).step(Dir::West), None);
        assert_eq!(Coord::new(0, 0).step(Dir::Down), None);
    }

    #[test]
    fn dir_to_requires_adjacency() {
        assert_eq!(Coord::new(0, 0).dir_to(Coord::new(2, 0)), None);
        assert_eq!(Coord::new(0, 0).dir_to(Coord::new(0, 0)), None);
    }

    #[test]
    fn opposites() {
        for d in Dir::ALL {
            assert_eq!(d.opposite().opposite(), d);
        }
    }
}

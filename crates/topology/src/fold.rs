//! Folding the linear array onto the 2D (or die-stacked 3D) grid.
//!
//! Figure 4(c): the AP's linear stack is laid through the cluster grid as a
//! serpentine — row 0 left-to-right, row 1 right-to-left, and so on. The
//! property that matters (and that the tests pin down) is **adjacency**:
//! stack slot `i` and slot `i + 1` always land on neighbouring clusters,
//! so a stack shift is a single-hop move everywhere, and the dynamic CSD
//! segments line up with physical cluster boundaries.
//!
//! [`die_stack`] extends the fold across two stacked dies (Figure 6(d)):
//! the path serpentines across the bottom die, rises through the 3D switch
//! at the far corner, and serpentines back across the top die, ending
//! above its entry point — still every hop adjacent.

use crate::coord::Coord;
use crate::error::TopologyError;
use std::collections::HashMap;

/// A bijection between linear stack indices and grid coordinates.
#[derive(Clone, Debug)]
pub struct FoldMap {
    path: Vec<Coord>,
    index: HashMap<Coord, usize>,
}

impl FoldMap {
    /// Builds a fold from an explicit path. Fails if any two consecutive
    /// coordinates are not adjacent, or a coordinate repeats.
    pub fn from_path(path: Vec<Coord>) -> Result<FoldMap, TopologyError> {
        if path.is_empty() {
            return Err(TopologyError::EmptyRegion);
        }
        let mut index = HashMap::with_capacity(path.len());
        for (i, &c) in path.iter().enumerate() {
            if index.insert(c, i).is_some() {
                return Err(TopologyError::NoLinearPath);
            }
            if i > 0 && !path[i - 1].is_adjacent(c) {
                return Err(TopologyError::NotAdjacent(path[i - 1], c));
            }
        }
        Ok(FoldMap { path, index })
    }

    /// Number of folded positions.
    pub fn len(&self) -> usize {
        self.path.len()
    }

    /// Whether the fold is empty (never true for a constructed fold).
    pub fn is_empty(&self) -> bool {
        self.path.is_empty()
    }

    /// The coordinate of linear index `i`.
    pub fn coord_of(&self, i: usize) -> Option<Coord> {
        self.path.get(i).copied()
    }

    /// The linear index at coordinate `c`.
    pub fn index_of(&self, c: Coord) -> Option<usize> {
        self.index.get(&c).copied()
    }

    /// The full path, in stack order (index 0 = top of stack).
    pub fn path(&self) -> &[Coord] {
        &self.path
    }

    /// Whether the fold's two ends are adjacent — i.e. the path can close
    /// into the ring of Figure 5 with one more chained switch.
    pub fn closes_as_ring(&self) -> bool {
        self.path.len() >= 3 && self.path[0].is_adjacent(*self.path.last().unwrap())
    }

    /// Physical Manhattan distance between two stack slots — what a chain
    /// between them must span on the die.
    pub fn physical_distance(&self, a: usize, b: usize) -> Option<u32> {
        Some(self.coord_of(a)?.manhattan(self.coord_of(b)?))
    }

    /// The worst physical distance of any single stack hop. 1 for every
    /// valid fold — asserting this is how tests pin the fold property.
    pub fn max_hop_distance(&self) -> u32 {
        self.path
            .windows(2)
            .map(|w| w[0].manhattan(w[1]))
            .max()
            .unwrap_or(0)
    }
}

/// The serpentine fold of a `w × h` grid (Figure 4(c)): row-major, with
/// every odd row reversed.
pub fn serpentine(w: u16, h: u16) -> FoldMap {
    let mut path = Vec::with_capacity(w as usize * h as usize);
    for y in 0..h {
        if y % 2 == 0 {
            for x in 0..w {
                path.push(Coord::new(x, y));
            }
        } else {
            for x in (0..w).rev() {
                path.push(Coord::new(x, y));
            }
        }
    }
    FoldMap::from_path(path).expect("serpentine is always a valid fold")
}

/// A ring fold of a `w × h` rectangle (Figure 5): a Hamiltonian cycle,
/// returned as a path whose last hop is adjacent to its first.
///
/// Exists iff the area is even and both sides are at least 2. The
/// construction uses column 0 as a return rail and serpentines the
/// remaining `w-1` columns row by row (transposed when only `w` is even).
pub fn rect_ring(w: u16, h: u16) -> Option<FoldMap> {
    if w < 2 || h < 2 || !(w as usize * h as usize).is_multiple_of(2) {
        return None;
    }
    if h.is_multiple_of(2) {
        let mut path = Vec::with_capacity(w as usize * h as usize);
        path.push(Coord::new(0, 0));
        for y in 0..h {
            if y % 2 == 0 {
                for x in 1..w {
                    path.push(Coord::new(x, y));
                }
            } else {
                for x in (1..w).rev() {
                    path.push(Coord::new(x, y));
                }
            }
        }
        // Return rail up column 0.
        for y in (1..h).rev() {
            path.push(Coord::new(0, y));
        }
        return Some(FoldMap::from_path(path).expect("rail ring is always valid"));
    }
    // h odd, so w must be even: transpose.
    let t = rect_ring(h, w)?;
    let path = t.path().iter().map(|c| Coord::new(c.y, c.x)).collect();
    Some(FoldMap::from_path(path).expect("transposed ring stays valid"))
}

/// The two-die fold (Figure 6(d)): serpentine across layer 0, one hop up
/// through the 3D stack switch, then the *reverse* serpentine across layer
/// 1, ending directly above the entry point.
pub fn die_stack(w: u16, h: u16) -> FoldMap {
    let bottom = serpentine(w, h);
    let mut path = bottom.path().to_vec();
    let &last = path.last().expect("nonempty fold");
    // Rise through the 3D switch, then retrace in reverse on the top die.
    for (i, c) in bottom.path().iter().rev().enumerate() {
        debug_assert!(i != 0 || c == &last);
        path.push(Coord::on_layer(c.x, c.y, 1));
    }
    FoldMap::from_path(path).expect("die-stack fold is always valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serpentine_visits_every_cluster_once() {
        let f = serpentine(8, 8);
        assert_eq!(f.len(), 64);
        let mut seen = std::collections::HashSet::new();
        for i in 0..64 {
            assert!(seen.insert(f.coord_of(i).unwrap()));
        }
    }

    #[test]
    fn serpentine_hops_are_single_distance() {
        for (w, h) in [(1u16, 1u16), (4, 4), (8, 8), (5, 3), (1, 7), (7, 1)] {
            let f = serpentine(w, h);
            assert!(f.max_hop_distance() <= 1, "{w}x{h} fold broke adjacency");
        }
    }

    #[test]
    fn fold_is_a_bijection() {
        let f = serpentine(5, 3);
        for i in 0..f.len() {
            let c = f.coord_of(i).unwrap();
            assert_eq!(f.index_of(c), Some(i));
        }
        assert_eq!(f.index_of(Coord::new(9, 9)), None);
        assert_eq!(f.coord_of(99), None);
    }

    #[test]
    fn serpentine_rows_alternate() {
        let f = serpentine(3, 2);
        let expect = [
            Coord::new(0, 0),
            Coord::new(1, 0),
            Coord::new(2, 0),
            Coord::new(2, 1),
            Coord::new(1, 1),
            Coord::new(0, 1),
        ];
        assert_eq!(f.path(), &expect);
    }

    #[test]
    fn two_row_serpentine_closes_as_ring() {
        // With exactly two rows the serpentine ends at (0,1), adjacent to
        // the start — taller serpentines end too far down and need the
        // dedicated ring construction (`rect_ring`).
        assert!(serpentine(3, 2).closes_as_ring());
        assert!(!serpentine(4, 4).closes_as_ring());
        assert!(!serpentine(4, 3).closes_as_ring());
        assert!(!serpentine(4, 1).closes_as_ring());
    }

    #[test]
    fn rect_ring_construction() {
        for (w, h) in [
            (2u16, 2u16),
            (4, 2),
            (2, 4),
            (4, 4),
            (3, 4),
            (4, 3),
            (5, 2),
            (6, 5),
        ] {
            let f = rect_ring(w, h).unwrap_or_else(|| panic!("{w}x{h} must ring"));
            assert_eq!(f.len(), w as usize * h as usize, "{w}x{h} covers all");
            assert!(f.max_hop_distance() <= 1, "{w}x{h} adjacency");
            assert!(f.closes_as_ring(), "{w}x{h} closes");
        }
        // Odd area or degenerate strips have no Hamiltonian cycle.
        assert!(rect_ring(3, 3).is_none());
        assert!(rect_ring(5, 1).is_none());
        assert!(rect_ring(1, 6).is_none());
    }

    #[test]
    fn die_stack_doubles_capacity_and_keeps_adjacency() {
        let f = die_stack(4, 3);
        assert_eq!(f.len(), 24);
        assert!(f.max_hop_distance() <= 1);
        // Ends directly above the entry point: the stack closes through
        // the 3D switch into a ring.
        assert!(f.closes_as_ring());
    }

    #[test]
    fn physical_distance_of_chains() {
        let f = serpentine(4, 4);
        // Slots 0 and 7 sit at (0,0) and (0,1): folded neighbours.
        assert_eq!(f.physical_distance(0, 7), Some(1));
        // Slots 0 and 15 span the grid corner-to-corner rows.
        assert_eq!(f.physical_distance(0, 15), Some(3));
    }

    #[test]
    fn invalid_paths_rejected() {
        // Non-adjacent jump.
        let bad = vec![Coord::new(0, 0), Coord::new(2, 0)];
        assert!(matches!(
            FoldMap::from_path(bad),
            Err(TopologyError::NotAdjacent(_, _))
        ));
        // Revisit.
        let dup = vec![Coord::new(0, 0), Coord::new(1, 0), Coord::new(0, 0)];
        assert!(matches!(
            FoldMap::from_path(dup),
            Err(TopologyError::NoLinearPath)
        ));
        assert!(matches!(
            FoldMap::from_path(vec![]),
            Err(TopologyError::EmptyRegion)
        ));
    }
}

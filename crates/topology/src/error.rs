//! Errors of the topology layer.

use crate::coord::Coord;
use std::fmt;

/// Errors raised while folding arrays or programming regions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TopologyError {
    /// A coordinate fell outside the chip grid.
    OutOfGrid(Coord),
    /// A region was empty.
    EmptyRegion,
    /// A region was not connected.
    Disconnected,
    /// No linear path threads every cluster of the region.
    NoLinearPath,
    /// No closed (ring) path threads every cluster of the region.
    NoRingPath,
    /// A switch needed by the region is already owned by another region
    /// (the reservation conflict wormhole configuration guards against).
    SwitchConflict {
        /// Where the conflict happened.
        at: Coord,
    },
    /// Chain/unchain requested between non-adjacent clusters.
    NotAdjacent(Coord, Coord),
    /// A switch needed by the operation is stuck: its programming
    /// registers no longer accept stores, so the cluster cannot join a
    /// region. Detected health-wise, reported typed — never silently
    /// mis-programmed.
    SwitchStuck {
        /// The stuck switch.
        at: Coord,
    },
    /// The region/grid was too large for the path-search budget.
    SearchBudgetExceeded,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::OutOfGrid(c) => write!(f, "coordinate {c} outside the grid"),
            TopologyError::EmptyRegion => write!(f, "empty region"),
            TopologyError::Disconnected => write!(f, "region is not connected"),
            TopologyError::NoLinearPath => write!(f, "no linear path covers the region"),
            TopologyError::NoRingPath => write!(f, "no ring path covers the region"),
            TopologyError::SwitchConflict { at } => {
                write!(f, "switch at {at} already owned by another region")
            }
            TopologyError::NotAdjacent(a, b) => {
                write!(f, "clusters {a} and {b} are not adjacent")
            }
            TopologyError::SwitchStuck { at } => {
                write!(f, "switch at {at} is stuck and rejects programming")
            }
            TopologyError::SearchBudgetExceeded => write!(f, "path search budget exceeded"),
        }
    }
}

impl std::error::Error for TopologyError {}

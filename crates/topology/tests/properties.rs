//! Property-based tests for folds, regions, and the switch fabric.

use proptest::prelude::*;
use vlsi_topology::switch::RegionTag;
use vlsi_topology::{fold, Coord, Region, SwitchFabric};

proptest! {
    /// Every serpentine fold is a bijection with single-hop adjacency.
    #[test]
    fn serpentine_fold_properties(w in 1u16..12, h in 1u16..12) {
        let f = fold::serpentine(w, h);
        prop_assert_eq!(f.len(), w as usize * h as usize);
        prop_assert!(f.max_hop_distance() <= 1);
        for i in 0..f.len() {
            prop_assert_eq!(f.index_of(f.coord_of(i).unwrap()), Some(i));
        }
    }

    /// The die-stack fold covers both layers, keeps adjacency, and always
    /// closes into a ring through the 3D switch.
    #[test]
    fn die_stack_fold_properties(w in 1u16..8, h in 1u16..8) {
        let f = fold::die_stack(w, h);
        prop_assert_eq!(f.len(), 2 * w as usize * h as usize);
        prop_assert!(f.max_hop_distance() <= 1);
        if f.len() >= 3 {
            prop_assert!(f.closes_as_ring());
        }
    }

    /// rect_ring yields a Hamiltonian cycle exactly when area is even and
    /// both sides are >= 2.
    #[test]
    fn rect_ring_existence(w in 1u16..10, h in 1u16..10) {
        match fold::rect_ring(w, h) {
            Some(f) => {
                prop_assert!(w >= 2 && h >= 2);
                prop_assert_eq!((w as usize * h as usize) % 2, 0);
                prop_assert_eq!(f.len(), w as usize * h as usize);
                prop_assert!(f.max_hop_distance() <= 1);
                prop_assert!(f.closes_as_ring());
            }
            None => {
                prop_assert!(w < 2 || h < 2 || (w as usize * h as usize) % 2 == 1);
            }
        }
    }

    /// Any connected region grown by random accretion admits a linear path
    /// or reports a clean error; when a path exists it covers the region
    /// with unit hops.
    #[test]
    fn grown_regions_path_or_fail_clean(seed_cells in prop::collection::vec((0u16..6, 0u16..6), 1..14)) {
        // Grow a connected blob: keep cells adjacent to what we have.
        let mut cells = vec![Coord::new(seed_cells[0].0, seed_cells[0].1)];
        for &(x, y) in &seed_cells[1..] {
            let c = Coord::new(x, y);
            if cells.iter().any(|&p| p.is_adjacent(c)) && !cells.contains(&c) {
                cells.push(c);
            }
        }
        let region = Region::new(cells.clone());
        prop_assert!(region.is_connected());
        if let Ok(f) = region.linear_path() {
            prop_assert_eq!(f.len(), region.len());
            prop_assert!(f.max_hop_distance() <= 1);
            for &p in f.path() {
                prop_assert!(region.contains(p));
            }
        }
    }

    /// Programming a region's path and releasing its owner restores every
    /// switch to the default state (clean down-scale).
    #[test]
    fn program_release_roundtrip(w in 1u16..6, h in 1u16..6, ox in 0u16..4, oy in 0u16..4) {
        let region = Region::rect(Coord::new(ox, oy), w, h);
        let f = region.linear_path().unwrap();
        let mut fabric = SwitchFabric::new();
        let tag = RegionTag(1);
        for &c in f.path() {
            fabric.reserve(c, tag).unwrap();
        }
        fabric.program_path(f.path(), tag, false).unwrap();
        // The shift path is recoverable from switch state alone.
        let traced = fabric.trace_shift_path(f.path()[0], f.len() + 4);
        prop_assert_eq!(traced, f.path().to_vec());
        fabric.release_owner(tag);
        prop_assert_eq!(fabric.programmed_coords().count(), 0);
    }

    /// The allocator always returns exactly-k connected, threadable
    /// regions when the chip is empty, for every k that fits.
    #[test]
    fn allocator_regions_are_always_gatherable(k in 1usize..40) {
        let grid = vlsi_topology::ClusterGrid::new(8, 8, vlsi_topology::Cluster::default());
        let r = vlsi_topology::alloc::find_region(&grid, k, |_| true)
            .expect("empty chip always fits");
        prop_assert_eq!(r.len(), k);
        prop_assert!(r.is_connected());
        let f = r.linear_path().expect("allocator shapes always thread");
        prop_assert!(f.max_hop_distance() <= 1);
        for c in r.cells() {
            prop_assert!(grid.contains(c));
        }
    }

    /// Fragmentation is always in [0, 1] for random occupancy patterns.
    #[test]
    fn fragmentation_bounded(occupied in prop::collection::vec((0u16..8, 0u16..8), 0..40)) {
        let grid = vlsi_topology::ClusterGrid::new(8, 8, vlsi_topology::Cluster::default());
        let occ: std::collections::HashSet<Coord> = occupied
            .into_iter()
            .map(|(x, y)| Coord::new(x, y))
            .collect();
        let f = vlsi_topology::alloc::fragmentation(&grid, |c| !occ.contains(&c));
        prop_assert!((0.0..=1.0).contains(&f), "{f}");
    }

    /// Two disjoint regions never conflict; overlapping regions always do.
    #[test]
    fn reservation_conflicts_iff_overlap(
        ax in 0u16..5, ay in 0u16..5, aw in 1u16..4, ah in 1u16..4,
        bx in 0u16..5, by in 0u16..5, bw in 1u16..4, bh in 1u16..4,
    ) {
        let a = Region::rect(Coord::new(ax, ay), aw, ah);
        let b = Region::rect(Coord::new(bx, by), bw, bh);
        let mut fabric = SwitchFabric::new();
        for c in a.cells() {
            fabric.reserve(c, RegionTag(1)).unwrap();
        }
        let mut conflicted = false;
        for c in b.cells() {
            if fabric.reserve(c, RegionTag(2)).is_err() {
                conflicted = true;
            }
        }
        prop_assert_eq!(conflicted, !a.is_disjoint(&b));
    }

    /// `rect_is_free` agrees with a cell-by-cell reference scan at every
    /// origin (including off-die ones), and `first_rect_fit` returns
    /// exactly the row-major first origin the reference accepts — under
    /// arbitrary defect and owner patterns and window sizes from
    /// degenerate (0) through full-die to oversized.
    #[test]
    fn fabric_index_rect_fit_matches_exhaustive_scan(
        defects in prop::collection::vec((0u16..8, 0u16..8), 0..12),
        owned in prop::collection::vec((0u16..8, 0u16..8), 0..12),
        w in 0u16..10, h in 0u16..10,
    ) {
        let mut idx = vlsi_topology::FabricIndex::new(8, 8);
        let mut blocked = std::collections::HashSet::new();
        for &(x, y) in &defects {
            idx.mark_defective(Coord::new(x, y));
            blocked.insert(Coord::new(x, y));
        }
        for &(x, y) in &owned {
            idx.set_owner(Coord::new(x, y), RegionTag(7));
            blocked.insert(Coord::new(x, y));
        }
        let reference = |ox: u16, oy: u16| -> bool {
            w != 0
                && h != 0
                && ox + w <= 8
                && oy + h <= 8
                && (0..h).all(|dy| (0..w).all(|dx| !blocked.contains(&Coord::new(ox + dx, oy + dy))))
        };
        for oy in 0..10u16 {
            for ox in 0..10u16 {
                prop_assert_eq!(
                    idx.rect_is_free(Coord::new(ox, oy), w, h),
                    reference(ox, oy),
                    "origin ({}, {})", ox, oy
                );
            }
        }
        let mut expect = None;
        'scan: for oy in 0..8u16 {
            for ox in 0..8u16 {
                if reference(ox, oy) {
                    expect = Some(Coord::new(ox, oy));
                    break 'scan;
                }
            }
        }
        prop_assert_eq!(idx.first_rect_fit(w, h), expect);
    }

    /// Boundary windows: the full-die rectangle fits exactly when the die
    /// is entirely clean, and the single-cell window lands on the
    /// row-major first free cell.
    #[test]
    fn fabric_index_full_die_and_single_cell(
        defects in prop::collection::vec((0u16..8, 0u16..8), 0..20),
    ) {
        let mut idx = vlsi_topology::FabricIndex::new(8, 8);
        let mut blocked = std::collections::HashSet::new();
        for &(x, y) in &defects {
            idx.mark_defective(Coord::new(x, y));
            blocked.insert(Coord::new(x, y));
        }
        let full = if blocked.is_empty() { Some(Coord::new(0, 0)) } else { None };
        prop_assert_eq!(idx.first_rect_fit(8, 8), full);
        let mut expect = None;
        'scan: for y in 0..8u16 {
            for x in 0..8u16 {
                if !blocked.contains(&Coord::new(x, y)) {
                    expect = Some(Coord::new(x, y));
                    break 'scan;
                }
            }
        }
        prop_assert_eq!(idx.first_rect_fit(1, 1), expect);
    }
}

//! The pass pipeline: parse → partition → shape → place → channels →
//! schedule → pipeline, with dumpable artifacts and per-pass telemetry.
//!
//! [`compile`] runs every pass in order and returns a [`Compilation`]
//! holding *all* intermediate artifacts — each pass's output is a
//! typed value, so passes unit-test in isolation and
//! [`Compilation::emit_after`] renders any artifact as deterministic
//! text for `--emit-after=<pass>` dumps and golden diffs.
//!
//! Telemetry (when the handle is live) records one `compile` span per
//! pass plus the gauges the bench and CI digests read:
//! `compile.stages`, `compile.cut_edges`, `compile.channels`,
//! `compile.clusters`, and `compile.utilization_milli` (compute
//! objects used over compute objects claimed, ×1000).

use crate::channels::{assign_channels, Channels};
use crate::error::CompileError;
use crate::netlist::Netlist;
use crate::partition::{partition, Partition};
use crate::pipemeta::{pipeline_meta, PipelineMeta};
use crate::place::{place, Placement};
use crate::schedule::schedule;
use crate::shape::{shape, Shape};
use std::fmt::Write as _;
use vlsi_core::StagedProgram;
use vlsi_telemetry::TelemetryHandle;
use vlsi_topology::{Cluster, Coord};

/// The pipeline's passes, in order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Pass {
    /// Text → [`Netlist`].
    Parse,
    /// [`Netlist`] → [`Partition`].
    Partition,
    /// [`Partition`] → [`Shape`].
    Shape,
    /// [`Shape`] → [`Placement`].
    Place,
    /// [`Partition`] + [`Shape`] → [`Channels`].
    Channels,
    /// Everything → [`StagedProgram`].
    Schedule,
    /// [`StagedProgram`] + [`Shape`] → [`PipelineMeta`] (Fig. 7(d)
    /// depth, buffer requirements, predicted initiation interval).
    Pipeline,
}

impl Pass {
    /// All passes, in pipeline order.
    pub const ALL: [Pass; 7] = [
        Pass::Parse,
        Pass::Partition,
        Pass::Shape,
        Pass::Place,
        Pass::Channels,
        Pass::Schedule,
        Pass::Pipeline,
    ];

    /// The pass's `--emit-after` name.
    pub fn name(self) -> &'static str {
        match self {
            Pass::Parse => "parse",
            Pass::Partition => "partition",
            Pass::Shape => "shape",
            Pass::Place => "place",
            Pass::Channels => "channels",
            Pass::Schedule => "schedule",
            Pass::Pipeline => "pipeline",
        }
    }

    /// Parses an `--emit-after` name.
    pub fn from_name(s: &str) -> Option<Pass> {
        Pass::ALL.into_iter().find(|p| p.name() == s)
    }
}

/// Compilation parameters.
#[derive(Clone, Debug)]
pub struct CompileOptions {
    /// Partition capacity: binary nodes per stage.
    pub max_nodes_per_stage: usize,
    /// Target die width in clusters.
    pub chip_width: u16,
    /// Target die height in clusters.
    pub chip_height: u16,
    /// Cluster composition of the target die.
    pub cluster: Cluster,
    /// Known-defective clusters the placement must avoid.
    pub defects: Vec<Coord>,
    /// ITRS year for the shaping pass's wire-delay weighting.
    pub year: u32,
    /// Telemetry sink (disabled by default).
    pub telemetry: TelemetryHandle,
}

impl Default for CompileOptions {
    fn default() -> CompileOptions {
        CompileOptions {
            max_nodes_per_stage: 12,
            chip_width: 32,
            chip_height: 32,
            cluster: Cluster::default(),
            defects: Vec::new(),
            year: 2012,
            telemetry: TelemetryHandle::disabled(),
        }
    }
}

/// Every artifact the pipeline produced, one per pass.
#[derive(Clone, Debug)]
pub struct Compilation {
    /// The parsed graph.
    pub netlist: Netlist,
    /// The partition.
    pub partition: Partition,
    /// The shapes.
    pub shape: Shape,
    /// The placement.
    pub placement: Placement,
    /// The channel maps.
    pub channels: Channels,
    /// The executable program.
    pub program: StagedProgram,
    /// The pipeline-overlap metadata.
    pub pipeline: PipelineMeta,
}

/// Runs the full pipeline over netlist text.
pub fn compile(text: &str, opts: &CompileOptions) -> Result<Compilation, CompileError> {
    let t = &opts.telemetry;
    // One span per pass on the `compile` track; the pass index doubles
    // as span id and (begin, end) cycle pair so traces order cleanly.
    let span = |name: &'static str, ix: u64| t.span_begin("compile", name, ix, ix);
    let end = |name: &'static str, ix: u64| t.span_end("compile", name, ix, ix + 1);

    span("parse", 0);
    let netlist = Netlist::parse(text)?;
    end("parse", 0);

    span("partition", 1);
    let part = partition(&netlist, opts.max_nodes_per_stage);
    end("partition", 1);

    span("shape", 2);
    let shapes = shape(
        &netlist,
        &part,
        &opts.cluster,
        opts.chip_width,
        opts.chip_height,
        opts.year,
    )?;
    end("shape", 2);

    span("place", 3);
    let placement = place(&shapes, opts.chip_width, opts.chip_height, &opts.defects)?;
    end("place", 3);

    span("channels", 4);
    let channels = assign_channels(&netlist, &part, &shapes, &opts.cluster)?;
    end("channels", 4);

    span("schedule", 5);
    let program = schedule(&netlist, &part, &placement, &channels)?;
    end("schedule", 5);

    span("pipeline", 6);
    let pipeline = pipeline_meta(&program, &shapes);
    end("pipeline", 6);

    t.count("compile.graphs", 1);
    t.gauge_set("compile.pipeline_depth", pipeline.depth() as i64);
    t.gauge_set(
        "compile.pipeline_ii_milli_ns",
        (pipeline.predicted_ii_ns * 1000.0).round() as i64,
    );
    t.gauge_set("compile.stages", part.stages.len() as i64);
    t.gauge_set("compile.cut_edges", part.cut_edges as i64);
    t.gauge_set("compile.channels", channels.total as i64);
    let claimed_clusters: usize = placement.regions.iter().map(|r| r.len()).sum();
    t.gauge_set("compile.clusters", claimed_clusters as i64);
    let used: usize = shapes.stages.iter().map(|s| s.compute_objects).sum();
    let claimed = claimed_clusters * opts.cluster.compute_objects;
    if let Some(per_mille) = (used * 1000).checked_div(claimed) {
        t.gauge_set("compile.utilization_milli", per_mille as i64);
    }

    Ok(Compilation {
        netlist,
        partition: part,
        shape: shapes,
        placement,
        channels,
        program,
        pipeline,
    })
}

impl Compilation {
    /// Renders the artifact the named pass produced, as deterministic
    /// text (the `--emit-after=<pass>` payload; golden-diff friendly).
    pub fn emit_after(&self, pass: Pass) -> String {
        let mut o = String::new();
        match pass {
            Pass::Parse => return self.netlist.render(),
            Pass::Partition => {
                let _ = writeln!(
                    o,
                    "partition {} max_nodes={} stages={} cut_edges={}",
                    self.netlist.name,
                    self.partition.max_nodes,
                    self.partition.stages.len(),
                    self.partition.cut_edges
                );
                for (i, s) in self.partition.stages.iter().enumerate() {
                    let names = |ids: &[usize]| -> String {
                        ids.iter()
                            .map(|&id| self.netlist.nodes[id].name.as_str())
                            .collect::<Vec<_>>()
                            .join(",")
                    };
                    let _ = writeln!(
                        o,
                        "stage {i} nodes=[{}] live_in=[{}] live_out=[{}] consts=[{}]",
                        names(&s.nodes),
                        names(&s.live_ins),
                        names(&s.live_outs),
                        names(&s.consts)
                    );
                }
            }
            Pass::Shape => {
                let _ = writeln!(o, "shape {} year={}", self.netlist.name, self.shape.year);
                for (i, s) in self.shape.stages.iter().enumerate() {
                    let _ = writeln!(
                        o,
                        "stage {i} rect={}x{} clusters={} compute={} memory={} wire_ns={:.4}",
                        s.width,
                        s.height,
                        s.clusters(),
                        s.compute_objects,
                        s.memory_objects,
                        s.est_wire_delay_ns
                    );
                }
            }
            Pass::Place => {
                let _ = writeln!(
                    o,
                    "place {} die={}x{} defects={}",
                    self.netlist.name,
                    self.placement.chip_width,
                    self.placement.chip_height,
                    self.placement.defects.len()
                );
                for (i, r) in self.placement.regions.iter().enumerate() {
                    let (origin, w, h) = r.as_rect().expect("placed regions are rects");
                    let _ = writeln!(
                        o,
                        "stage {i} origin=({},{}) rect={w}x{h}",
                        origin.x, origin.y
                    );
                }
            }
            Pass::Channels => {
                let _ = writeln!(
                    o,
                    "channels {} total={}",
                    self.netlist.name, self.channels.total
                );
                for (i, s) in self.channels.stages.iter().enumerate() {
                    let binds = s
                        .bindings
                        .iter()
                        .map(|(node, block)| format!("{}->{block}", self.netlist.nodes[*node].name))
                        .collect::<Vec<_>>()
                        .join(" ");
                    let _ = writeln!(o, "stage {i} [{binds}]");
                }
            }
            Pass::Schedule => {
                let _ = writeln!(
                    o,
                    "schedule {} stages={} clusters={}",
                    self.program.name,
                    self.program.stages.len(),
                    self.program.clusters()
                );
                for s in &self.program.stages {
                    let ins = s
                        .inputs
                        .iter()
                        .map(|(v, b)| format!("{v}@{b}"))
                        .collect::<Vec<_>>()
                        .join(" ");
                    let outs = s
                        .outputs
                        .iter()
                        .map(|(v, tap)| format!("{v}@{}", tap.0))
                        .collect::<Vec<_>>()
                        .join(" ");
                    let _ = writeln!(
                        o,
                        "stage {} clusters={} objects={} stream={} in=[{ins}] out=[{outs}]",
                        s.name,
                        s.clusters,
                        s.objects.len(),
                        s.stream.len()
                    );
                }
                for (name, var) in &self.program.outputs {
                    let _ = writeln!(o, "output {name} {var}");
                }
            }
            Pass::Pipeline => {
                let p = &self.pipeline;
                let _ = writeln!(
                    o,
                    "pipeline {} depth={} predicted_ii_ns={:.4} fill_ns={:.4}",
                    self.program.name,
                    p.depth(),
                    p.predicted_ii_ns,
                    p.fill_ns
                );
                for (l, group) in p.levels.iter().enumerate() {
                    let names = group
                        .iter()
                        .map(|&j| p.stages[j].name.as_str())
                        .collect::<Vec<_>>()
                        .join(",");
                    let _ = writeln!(o, "level {l} stages=[{names}]");
                }
                for s in &p.stages {
                    let _ = writeln!(
                        o,
                        "stage {} level={} buffer_words={} est_ns={:.4}",
                        s.name, s.level, s.buffer_words, s.est_stage_ns
                    );
                }
            }
        }
        o
    }

    /// Every pass's dump concatenated (the full artifact trail).
    pub fn emit_all(&self) -> String {
        Pass::ALL
            .iter()
            .map(|p| format!("== {} ==\n{}", p.name(), self.emit_after(*p)))
            .collect::<Vec<_>>()
            .join("")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str =
        "graph g\ninput x\ninput y\nconst k 3\nnode a mul x k\nnode b add a y\noutput o b\n";

    #[test]
    fn pipeline_is_deterministic_per_input() {
        let opts = CompileOptions::default();
        let a = compile(SAMPLE, &opts).unwrap();
        let b = compile(SAMPLE, &opts).unwrap();
        assert_eq!(a.emit_all(), b.emit_all());
        assert_eq!(a.program, b.program);
    }

    #[test]
    fn every_pass_dumps_nonempty_text() {
        let c = compile(SAMPLE, &CompileOptions::default()).unwrap();
        for p in Pass::ALL {
            let d = c.emit_after(p);
            assert!(!d.is_empty(), "{} dump empty", p.name());
        }
        assert!(c.emit_all().contains("== schedule =="));
    }

    #[test]
    fn pass_names_round_trip() {
        for p in Pass::ALL {
            assert_eq!(Pass::from_name(p.name()), Some(p));
        }
        assert_eq!(Pass::from_name("nope"), None);
    }

    #[test]
    fn telemetry_gauges_and_spans_land() {
        let handle = vlsi_telemetry::TelemetryHandle::active();
        let opts = CompileOptions {
            telemetry: handle.clone(),
            max_nodes_per_stage: 1,
            ..CompileOptions::default()
        };
        compile(SAMPLE, &opts).unwrap();
        let snap = handle.snapshot();
        assert_eq!(snap.counter("compile.graphs"), 1);
        assert_eq!(snap.gauge("compile.stages"), 2);
        assert!(snap.gauge("compile.channels") >= 2);
        assert!(snap.gauge("compile.utilization_milli") > 0);
    }

    #[test]
    fn errors_surface_with_their_pass() {
        let e = compile("graph g\n", &CompileOptions::default()).unwrap_err();
        assert!(matches!(e, CompileError::Netlist(_)));
        let opts = CompileOptions {
            chip_width: 1,
            chip_height: 1,
            ..CompileOptions::default()
        };
        // 1×1 die: a stage needing 2+ clusters cannot be shaped.
        let mut text = String::from("graph g\ninput x\n");
        let mut prev = "x".to_string();
        for i in 0..12 {
            text.push_str(&format!("node n{i} add {prev} {prev}\n"));
            prev = format!("n{i}");
        }
        text.push_str(&format!("output o {prev}\n"));
        let e = compile(&text, &opts).unwrap_err();
        assert!(matches!(e, CompileError::StageTooLarge { .. }));
    }
}

//! The partition pass: cut the DAG into mailbox-connected stages.
//!
//! This generalises the basic-block partitioner of
//! `vlsi-workloads::program` (which cuts on *control flow*) to
//! arbitrary dataflow DAGs, cutting on *capacity*: each stage holds at
//! most `max_nodes` binary nodes, and a greedy cut-size heuristic
//! assigns every node to the eligible stage already holding the most
//! of its producers, so values stay local instead of crossing the
//! mailbox.
//!
//! Two invariants make the result executable in stage-index order on
//! the staged executor:
//!
//! 1. **Forward edges only.** Nodes are processed in definition
//!    (topological) order and may only join a stage with index ≥ every
//!    producer's stage — so the quotient graph of stages is itself a
//!    DAG whose topological order is the stage index.
//! 2. **Constants are free.** `const` values are duplicated into every
//!    stage that reads them (a local `Const` object costs one compute
//!    slot; a mailbox channel costs a memory object *and* a write), so
//!    only `input`→stage and stage→stage edges count toward the cut.

use crate::netlist::{NetOp, Netlist, NodeId};

/// One stage of the partition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PartStage {
    /// Nodes assigned to this stage, in definition order: every `Bin`
    /// node, plus any `Const` node that is itself a program output
    /// (it must be materialised somewhere to be probed).
    pub nodes: Vec<NodeId>,
    /// Values this stage reads through its mailbox, in ascending node
    /// order: graph inputs and earlier stages' nodes (never consts).
    pub live_ins: Vec<NodeId>,
    /// Nodes this stage must expose through probes: read by a later
    /// stage, or a program output.
    pub live_outs: Vec<NodeId>,
    /// Distinct `Const` nodes this stage materialises locally (operands
    /// of its `Bin` nodes), ascending.
    pub consts: Vec<NodeId>,
}

/// The partition artifact.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Partition {
    /// Stage capacity the pass ran with.
    pub max_nodes: usize,
    /// Stages in execution order.
    pub stages: Vec<PartStage>,
    /// Inter-stage value edges: distinct `(producer node, consumer
    /// stage)` pairs with the producer in an earlier stage. Graph
    /// inputs don't count (they are driver writes, not stage traffic).
    pub cut_edges: usize,
}

/// Partitions `netlist` into stages of at most `max_nodes` binary
/// nodes. Deterministic: ties in the heuristic break toward the
/// latest eligible stage.
pub fn partition(netlist: &Netlist, max_nodes: usize) -> Partition {
    let max_nodes = max_nodes.max(1);
    // stage_of[node] = stage index, for assigned (Bin / output-const) nodes.
    let mut stage_of: Vec<Option<usize>> = vec![None; netlist.nodes.len()];
    let mut stages: Vec<PartStage> = Vec::new();

    // Const nodes that are program outputs must live somewhere; they
    // are assigned like Bin nodes (but cost no cut edges).
    let output_consts: Vec<bool> = {
        let mut v = vec![false; netlist.nodes.len()];
        for (_, id) in &netlist.outputs {
            if matches!(netlist.nodes[*id].op, NetOp::Const(_)) {
                v[*id] = true;
            }
        }
        v
    };

    for (id, node) in netlist.nodes.iter().enumerate() {
        let bin_preds: Vec<NodeId> = match node.op {
            NetOp::Bin(_, a, b) => {
                let mut p: Vec<NodeId> = [a, b]
                    .into_iter()
                    .filter(|&x| matches!(netlist.nodes[x].op, NetOp::Bin(..)))
                    .collect();
                p.dedup();
                p
            }
            NetOp::Const(_) if output_consts[id] => Vec::new(),
            _ => continue, // inputs and plain consts are not assigned
        };
        // Eligibility: at or after every producer's stage, with room.
        let floor = bin_preds
            .iter()
            .filter_map(|&p| stage_of[p])
            .max()
            .unwrap_or(0);
        let pick = (floor..stages.len())
            .filter(|&s| stages[s].nodes.len() < max_nodes)
            .max_by_key(|&s| {
                let resident = bin_preds
                    .iter()
                    .filter(|&&p| stage_of[p] == Some(s))
                    .count();
                (resident, s) // most producers resident; tie → latest
            });
        let s = match pick {
            Some(s) => s,
            None => {
                stages.push(PartStage {
                    nodes: Vec::new(),
                    live_ins: Vec::new(),
                    live_outs: Vec::new(),
                    consts: Vec::new(),
                });
                stages.len() - 1
            }
        };
        stages[s].nodes.push(id);
        stage_of[id] = Some(s);
    }

    // Live-ins / live-outs / local consts / cut edges.
    let mut cut_edges = 0usize;
    let mut is_output = vec![false; netlist.nodes.len()];
    for (_, id) in &netlist.outputs {
        is_output[*id] = true;
    }
    // consumed_by[node] = stages that read it (ascending, deduped).
    let mut consumed_by: Vec<Vec<usize>> = vec![Vec::new(); netlist.nodes.len()];
    for (s, stage) in stages.iter().enumerate() {
        for &id in &stage.nodes {
            if let NetOp::Bin(_, a, b) = netlist.nodes[id].op {
                for p in [a, b] {
                    if consumed_by[p].last() != Some(&s) {
                        consumed_by[p].push(s);
                    }
                }
            }
        }
    }
    for (s, stage) in stages.iter_mut().enumerate() {
        let mut live_ins = Vec::new();
        let mut consts = Vec::new();
        for &id in &stage.nodes {
            if let NetOp::Bin(_, a, b) = netlist.nodes[id].op {
                for p in [a, b] {
                    match netlist.nodes[p].op {
                        NetOp::Const(_) => {
                            if !consts.contains(&p) {
                                consts.push(p);
                            }
                        }
                        NetOp::Input => {
                            if !live_ins.contains(&p) {
                                live_ins.push(p);
                            }
                        }
                        NetOp::Bin(..) => {
                            if stage_of[p] != Some(s) && !live_ins.contains(&p) {
                                live_ins.push(p);
                                cut_edges += 1;
                            }
                        }
                    }
                }
            }
        }
        live_ins.sort_unstable();
        consts.sort_unstable();
        let mut live_outs: Vec<NodeId> = stage
            .nodes
            .iter()
            .copied()
            .filter(|&id| is_output[id] || consumed_by[id].iter().any(|&c| c != s))
            .collect();
        live_outs.sort_unstable();
        stage.live_ins = live_ins;
        stage.live_outs = live_outs;
        stage.consts = consts;
    }

    Partition {
        max_nodes,
        stages,
        cut_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    fn parse(text: &str) -> Netlist {
        Netlist::parse(text).unwrap()
    }

    #[test]
    fn small_graph_is_one_stage() {
        let n = parse("graph g\ninput x\ninput y\nnode a add x y\nnode b mul a a\noutput o b\n");
        let p = partition(&n, 12);
        assert_eq!(p.stages.len(), 1);
        assert_eq!(p.cut_edges, 0);
        let s = &p.stages[0];
        assert_eq!(s.nodes.len(), 2);
        assert_eq!(s.live_ins.len(), 2); // x, y
        assert_eq!(s.live_outs.len(), 1); // b (output)
        assert!(s.consts.is_empty());
    }

    #[test]
    fn capacity_forces_a_cut_and_edges_stay_forward() {
        // A chain of 6 nodes at max_nodes=2 → 3 stages, 2 cut edges.
        let mut text = String::from("graph chain\ninput x\n");
        let mut prev = "x".to_string();
        for i in 0..6 {
            text.push_str(&format!("node n{i} add {prev} {prev}\n"));
            prev = format!("n{i}");
        }
        text.push_str(&format!("output o {prev}\n"));
        let p = partition(&parse(&text), 2);
        assert_eq!(p.stages.len(), 3);
        assert_eq!(p.cut_edges, 2);
        // Forward-edge invariant: every live-in of stage s was assigned
        // to an earlier stage (or is a graph input).
        for (s, stage) in p.stages.iter().enumerate() {
            for &li in &stage.live_ins {
                let producer_stage = p.stages.iter().position(|st| st.nodes.contains(&li));
                if let Some(ps) = producer_stage {
                    assert!(ps < s, "live-in {li} of stage {s} produced in {ps}");
                }
            }
        }
    }

    #[test]
    fn consts_duplicate_instead_of_cutting() {
        // Two stages both read const k: no cut edge for k, both stages
        // materialise it locally.
        let text = "graph g\ninput x\nconst k 3\nnode a add x k\nnode b add a k\noutput o b\n";
        let p = partition(&parse(text), 1);
        assert_eq!(p.stages.len(), 2);
        assert_eq!(p.cut_edges, 1); // only a → stage 1
        assert_eq!(p.stages[0].consts, vec![1]);
        assert_eq!(p.stages[1].consts, vec![1]);
    }

    #[test]
    fn heuristic_prefers_the_stage_holding_producers() {
        // d reads a (stage 0, full? no) — build: a b fill stage 0
        // (max 2); c opens stage 1; d reads a and c → must go to a
        // stage ≥ stage(c)=1, lands with its producer c.
        let text = "graph g\ninput x\n\
                    node a add x x\nnode b add x x\nnode c add a b\n\
                    node d add a c\noutput o d\n";
        let p = partition(&parse(text), 2);
        assert_eq!(p.stages.len(), 2);
        assert_eq!(p.stages[1].nodes.len(), 2); // c and d together
                                                // a is live-out of stage 0 (read by stage 1 twice → one edge
                                                // per producer), b likewise.
        assert_eq!(p.stages[0].live_outs.len(), 2);
        assert_eq!(p.cut_edges, 2);
    }

    #[test]
    fn output_consts_are_materialised() {
        let text = "graph g\nconst k 42\ninput x\nnode a add x x\noutput y k\noutput z a\n";
        let p = partition(&parse(text), 8);
        let holder: Vec<_> = p.stages.iter().filter(|s| s.nodes.contains(&0)).collect();
        assert_eq!(holder.len(), 1);
        assert!(holder[0].live_outs.contains(&0));
    }

    #[test]
    fn corpus_partitions_preserve_node_count() {
        for (name, text) in vlsi_workloads::netgen::corpus(2012) {
            let n = parse(&text);
            let p = partition(&n, 12);
            let assigned: usize = p.stages.iter().map(|s| s.nodes.len()).sum();
            assert!(assigned >= n.bin_count(), "{name} lost nodes");
            for s in &p.stages {
                assert!(s.nodes.len() <= 12, "{name} overfull stage");
            }
        }
    }
}

//! The schedule pass: lower partitioned stages to an executable
//! [`StagedProgram`].
//!
//! Lowering follows the `blockexec` recipe exactly — it is the same
//! hardware contract:
//!
//! * each mailbox channel becomes a **memory `Load` object** bound to
//!   its block (`init = [0, block, 0]`), addressed by a zero-valued
//!   `Const` object, so the stage reads whatever its predecessor (or
//!   the driver) wrote at address 0;
//! * each local constant becomes a `Const` object with the value as
//!   immediate;
//! * each binary node becomes a compute object with the operator's AP
//!   operation, chained by a two-source stream element;
//! * each live-out gains a `Pass` **probe** so its value is observable
//!   as an execution tap.
//!
//! The raw element list is then fed through
//! [`optimize_stream`](vlsi_workloads::optimize_stream) — the paper's
//! §5 point that "the application compiler chooses the stream order" —
//! so the emitted stream arrives in the working-set-friendly order the
//! optimiser proves semantics-preserving.

use crate::channels::Channels;
use crate::error::CompileError;
use crate::netlist::{NetOp, Netlist, NodeId};
use crate::partition::Partition;
use crate::place::Placement;
use std::collections::HashMap;
use vlsi_core::{StagedProgram, StagedStage};
use vlsi_object::{
    GlobalConfigElement, GlobalConfigStream, LocalConfig, LogicalObject, ObjectId, Operation, Word,
};
use vlsi_workloads::optimize_stream;

/// Lowers the partitioned, placed, channel-assigned graph to the
/// executable artifact.
pub fn schedule(
    netlist: &Netlist,
    part: &Partition,
    placement: &Placement,
    channels: &Channels,
) -> Result<StagedProgram, CompileError> {
    let mut stages = Vec::with_capacity(part.stages.len());
    for (i, st) in part.stages.iter().enumerate() {
        let binds = &channels.stages[i].bindings;
        let mut objects: Vec<LogicalObject> = Vec::new();
        let mut elements: Vec<GlobalConfigElement> = Vec::new();
        let mut next_id = 0u32;
        let mut fresh = || {
            let id = ObjectId(next_id);
            next_id += 1;
            id
        };

        // Mailbox loads + their address constants.
        let mut src_of: HashMap<NodeId, ObjectId> = HashMap::new();
        let mut inputs = Vec::with_capacity(binds.len());
        let mut addrs = Vec::with_capacity(binds.len());
        for &(node, block) in binds {
            let mem = fresh();
            objects.push(
                LogicalObject::memory(mem, LocalConfig::op(Operation::Load)).with_init(vec![
                    Word(0),
                    Word(block as u64),
                    Word(0),
                ]),
            );
            src_of.insert(node, mem);
            inputs.push((netlist.nodes[node].name.clone(), block));
            addrs.push(mem);
        }
        for &mem in &addrs {
            let addr = fresh();
            objects.push(LogicalObject::compute(
                addr,
                LocalConfig::with_imm(Operation::Const, Word(0)),
            ));
            elements.push(GlobalConfigElement::unary(mem, addr));
        }

        // Assigned nodes: binary compute objects and output-constants.
        // (Assigned consts double as the stage's local copy, so the
        // local-const loop below skips them.)
        for &id in &st.nodes {
            let obj = fresh();
            match netlist.nodes[id].op {
                NetOp::Bin(op, ..) => {
                    objects.push(LogicalObject::compute(obj, LocalConfig::op(op.operation())));
                }
                NetOp::Const(v) => {
                    objects.push(LogicalObject::compute(
                        obj,
                        LocalConfig::with_imm(Operation::Const, Word::from_i64(v)),
                    ));
                }
                NetOp::Input => unreachable!("inputs are never assigned to stages"),
            }
            src_of.insert(id, obj);
        }

        // Local constants not already materialised as assigned nodes.
        for &c in &st.consts {
            if src_of.contains_key(&c) {
                continue;
            }
            let NetOp::Const(v) = netlist.nodes[c].op else {
                unreachable!("partition consts are Const nodes");
            };
            let obj = fresh();
            objects.push(LogicalObject::compute(
                obj,
                LocalConfig::with_imm(Operation::Const, Word::from_i64(v)),
            ));
            src_of.insert(c, obj);
        }

        // Dataflow elements, in node (definition) order.
        for &id in &st.nodes {
            if let NetOp::Bin(_, a, b) = netlist.nodes[id].op {
                let lhs = src_of[&a];
                let rhs = src_of[&b];
                elements.push(GlobalConfigElement::binary(src_of[&id], lhs, rhs));
            }
        }

        // Probes for live-outs.
        let mut outputs = Vec::with_capacity(st.live_outs.len());
        for &id in &st.live_outs {
            let probe = fresh();
            objects.push(LogicalObject::compute(
                probe,
                LocalConfig::op(Operation::Pass),
            ));
            elements.push(GlobalConfigElement::unary(probe, src_of[&id]));
            outputs.push((netlist.nodes[id].name.clone(), probe));
        }

        let raw: GlobalConfigStream = elements.into_iter().collect();
        // Behind an Arc so every configure of the deployed stage —
        // including each re-deploy of a pipelined batch — shares this
        // one allocation instead of cloning the elements.
        let stream = std::sync::Arc::new(optimize_stream(&raw));
        stages.push(StagedStage {
            name: format!("s{i}"),
            clusters: placement.regions[i].len(),
            objects,
            stream,
            inputs,
            outputs,
        });
    }

    let outputs = netlist
        .outputs
        .iter()
        .map(|(name, id)| (name.clone(), netlist.nodes[*id].name.clone()))
        .collect();
    Ok(StagedProgram {
        name: netlist.name.clone(),
        stages,
        outputs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition;
    use crate::place::place;
    use crate::shape::shape;
    use std::collections::HashMap;
    use vlsi_core::{StagedExecutor, VlsiChip};
    use vlsi_topology::Cluster;

    fn compile_for_test(text: &str, max_nodes: usize) -> (Netlist, StagedProgram) {
        let cluster = Cluster::default();
        let n = Netlist::parse(text).unwrap();
        let p = partition(&n, max_nodes);
        let s = shape(&n, &p, &cluster, 16, 16, 2012).unwrap();
        let pl = place(&s, 16, 16, &[]).unwrap();
        let ch = crate::channels::assign_channels(&n, &p, &s, &cluster).unwrap();
        let prog = schedule(&n, &p, &pl, &ch).unwrap();
        (n, prog)
    }

    #[test]
    fn lowered_program_matches_the_evaluator_on_chip() {
        let text = "graph g\ninput x\ninput y\nconst k 3\n\
                    node a mul x k\nnode b add a y\nnode c sub b x\n\
                    output o c\n";
        for max_nodes in [1, 2, 12] {
            let (n, prog) = compile_for_test(text, max_nodes);
            let mut chip = VlsiChip::new(16, 16, Cluster::default());
            let exec = StagedExecutor::deploy(&mut chip, prog).unwrap();
            for (x, y) in [(0i64, 0i64), (7, -2), (-100, 41)] {
                let env = HashMap::from([("x".to_string(), x), ("y".to_string(), y)]);
                let (got, _) = exec.run(&mut chip, &env).unwrap();
                assert_eq!(got, n.evaluate(&env), "max_nodes={max_nodes} x={x} y={y}");
            }
        }
    }

    #[test]
    fn comparisons_and_const_outputs_lower() {
        let text = "graph g\ninput x\nconst k 5\nnode a gt x k\nnode b eq x k\n\
                    output big a\noutput same b\noutput five k\n";
        let (n, prog) = compile_for_test(text, 12);
        let mut chip = VlsiChip::new(16, 16, Cluster::default());
        let exec = StagedExecutor::deploy(&mut chip, prog).unwrap();
        for x in [-1i64, 5, 9] {
            let env = HashMap::from([("x".to_string(), x)]);
            let (got, _) = exec.run(&mut chip, &env).unwrap();
            assert_eq!(got, n.evaluate(&env), "x={x}");
            assert_eq!(got[2], 5); // the const output
        }
    }

    #[test]
    fn stream_is_optimised_and_capacity_respected() {
        let cluster = Cluster::default();
        for (name, text) in vlsi_workloads::netgen::corpus(2012) {
            let n = Netlist::parse(&text).unwrap();
            let p = partition(&n, 12);
            let s = shape(&n, &p, &cluster, 32, 32, 2012).unwrap();
            let pl = place(&s, 32, 32, &[]).unwrap();
            let ch = crate::channels::assign_channels(&n, &p, &s, &cluster).unwrap();
            let prog = schedule(&n, &p, &pl, &ch).unwrap();
            for (i, st) in prog.stages.iter().enumerate() {
                // Non-memory working set fits the region's stack.
                let mem_count = st.inputs.len();
                let compute_count = st.objects.len() - mem_count;
                assert!(
                    compute_count <= st.clusters * cluster.compute_objects,
                    "{name} stage {i}: {compute_count} compute objects on {} clusters",
                    st.clusters
                );
                assert!(mem_count <= st.clusters * cluster.memory_objects);
            }
        }
    }
}

//! The placement pass: bind shapes to concrete die rectangles.
//!
//! Placement runs against a [`FabricIndex`] mirror of the target die —
//! the same occupancy structure the chip itself maintains — seeded
//! with the expected defect plan, so a compiled layout routes around
//! known-bad clusters *before* deployment ever touches the hardware.
//!
//! The policy is deterministic and fragmentation-aware:
//!
//! * stages place **largest first** (descending cluster count, stable
//!   by stage index), so big rectangles claim contiguous space before
//!   small ones shred it;
//! * each stage takes the **row-major first fit** of its rectangle
//!   ([`FabricIndex::first_rect_fit`]), trying the transposed
//!   orientation before giving up;
//! * failure is the typed [`CompileError::Unplaceable`], naming the
//!   stage and shape — the caller can re-shape for a bigger die, not
//!   guess.

use crate::error::CompileError;
use crate::shape::Shape;
use vlsi_topology::switch::RegionTag;
use vlsi_topology::{Coord, FabricIndex, Region};

/// The placement artifact: one region per stage, in stage order.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Placement {
    /// Stage regions (`regions[i]` is stage `i`'s rectangle).
    pub regions: Vec<Region>,
    /// Die width the layout targets.
    pub chip_width: u16,
    /// Die height the layout targets.
    pub chip_height: u16,
    /// Defects the layout avoided.
    pub defects: Vec<Coord>,
}

/// Places every stage of `shape` on a `chip_width × chip_height` die
/// with `defects` marked bad.
pub fn place(
    shape: &Shape,
    chip_width: u16,
    chip_height: u16,
    defects: &[Coord],
) -> Result<Placement, CompileError> {
    let mut index = FabricIndex::new(chip_width, chip_height);
    for &d in defects {
        index.mark_defective(d);
    }
    // Largest stages first; stable on stage index for determinism.
    let mut order: Vec<usize> = (0..shape.stages.len()).collect();
    order.sort_by_key(|&i| (usize::MAX - shape.stages[i].clusters(), i));

    let mut regions: Vec<Option<Region>> = vec![None; shape.stages.len()];
    for &i in &order {
        let st = &shape.stages[i];
        let fit = index
            .first_rect_fit(st.width, st.height)
            .map(|o| (o, st.width, st.height))
            .or_else(|| {
                index
                    .first_rect_fit(st.height, st.width)
                    .map(|o| (o, st.height, st.width))
            });
        let Some((origin, w, h)) = fit else {
            return Err(CompileError::Unplaceable {
                stage: i,
                width: st.width,
                height: st.height,
            });
        };
        let region = Region::rect(origin, w, h);
        for c in region.cells() {
            index.set_owner(c, RegionTag(i as u32));
        }
        regions[i] = Some(region);
    }
    Ok(Placement {
        regions: regions.into_iter().map(|r| r.expect("placed")).collect(),
        chip_width,
        chip_height,
        defects: defects.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::StageShape;

    fn shapes(dims: &[(u16, u16)]) -> Shape {
        Shape {
            stages: dims
                .iter()
                .map(|&(width, height)| StageShape {
                    width,
                    height,
                    compute_objects: 1,
                    memory_objects: 1,
                    est_wire_delay_ns: 1.0,
                })
                .collect(),
            year: 2012,
        }
    }

    #[test]
    fn placements_are_disjoint_and_deterministic() {
        let s = shapes(&[(2, 2), (4, 2), (1, 3)]);
        let a = place(&s, 8, 8, &[]).unwrap();
        let b = place(&s, 8, 8, &[]).unwrap();
        assert_eq!(a, b);
        let mut seen = std::collections::HashSet::new();
        for r in &a.regions {
            for c in r.cells() {
                assert!(seen.insert(c), "overlap at {c:?}");
            }
        }
        // Largest-first: the 4×2 stage got the die corner.
        assert_eq!(a.regions[1], Region::rect(Coord::new(0, 0), 4, 2));
    }

    #[test]
    fn defects_are_routed_around() {
        let s = shapes(&[(2, 2)]);
        let clean = place(&s, 4, 4, &[]).unwrap();
        assert_eq!(clean.regions[0], Region::rect(Coord::new(0, 0), 2, 2));
        let dirty = place(&s, 4, 4, &[Coord::new(1, 1)]).unwrap();
        assert_eq!(dirty.regions[0], Region::rect(Coord::new(2, 0), 2, 2));
        for c in dirty.regions[0].cells() {
            assert_ne!(c, Coord::new(1, 1));
        }
    }

    #[test]
    fn transpose_rescues_a_tight_fit() {
        // A 4-wide, 1-tall die cannot hold 1×4 — but its transpose fits.
        let s = shapes(&[(1, 4)]);
        let p = place(&s, 4, 1, &[]).unwrap();
        assert_eq!(p.regions[0], Region::rect(Coord::new(0, 0), 4, 1));
    }

    #[test]
    fn unplaceable_is_typed_with_the_stage() {
        let s = shapes(&[(2, 2), (2, 2)]);
        // 2×2 die with one defect: the first stage cannot even fit.
        let err = place(&s, 2, 2, &[Coord::new(0, 0)]).unwrap_err();
        assert!(matches!(err, CompileError::Unplaceable { .. }));
        // Fragmentation case: two 2×2s on a 2×4 die fit; on 2×3 the
        // second is unplaceable and the error names it.
        assert!(place(&s, 2, 4, &[]).is_ok());
        match place(&s, 2, 3, &[]).unwrap_err() {
            CompileError::Unplaceable { stage, .. } => assert_eq!(stage, 1),
            e => panic!("unexpected {e}"),
        }
    }
}

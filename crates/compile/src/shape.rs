//! The region-shaping pass: pick a rectangle for every stage.
//!
//! A stage needs enough *compute* objects for its datapath working set
//! (binary nodes + local constants + one address constant per mailbox
//! channel + one probe per live-out) and enough *memory* objects for
//! its mailbox channels (one per live-in). The cluster composition
//! (`Cluster::default()` = 4 compute + 4 memory, the paper's 2×2-patch
//! minimum AP) converts those counts into a cluster count; this pass
//! then chooses the rectangle's aspect ratio against the §4 cost
//! model: among all `w × h` covers of the cluster count, prefer the
//! smallest area, then the smallest *wire-delay-weighted semi-
//! perimeter* (`(w + h) · t_wire(region)`, with `t_wire` from the ITRS
//! tables — the §4 argument that a scaled processor's cycle time is
//! set by the wires that span it), then the narrowest width.

use crate::error::CompileError;
use crate::netlist::Netlist;
use crate::partition::Partition;
use vlsi_cost::itrs::{self, YearParams};
use vlsi_cost::wire;
use vlsi_topology::Cluster;

/// The shape chosen for one stage.
#[derive(Clone, PartialEq, Debug)]
pub struct StageShape {
    /// Region width in clusters.
    pub width: u16,
    /// Region height in clusters.
    pub height: u16,
    /// Compute objects the stage's datapath needs.
    pub compute_objects: usize,
    /// Memory objects (mailbox channels) the stage needs.
    pub memory_objects: usize,
    /// Estimated global-wire delay across the region (ns, §4 model).
    pub est_wire_delay_ns: f64,
}

impl StageShape {
    /// Clusters the rectangle spans.
    pub fn clusters(&self) -> usize {
        usize::from(self.width) * usize::from(self.height)
    }
}

/// The shaping artifact.
#[derive(Clone, PartialEq, Debug)]
pub struct Shape {
    /// Per-stage shapes, in stage order.
    pub stages: Vec<StageShape>,
    /// ITRS year the wire-delay weighting used.
    pub year: u32,
}

/// Shapes every stage of `part` for a `chip_width × chip_height` die
/// of `cluster`-composed clusters.
pub fn shape(
    netlist: &Netlist,
    part: &Partition,
    cluster: &Cluster,
    chip_width: u16,
    chip_height: u16,
    year: u32,
) -> Result<Shape, CompileError> {
    let params = itrs::year(year).unwrap_or_else(|| itrs::year(2012).expect("2012 tabulated"));
    let _ = netlist; // shapes depend only on the partition's counts
    let mut stages = Vec::with_capacity(part.stages.len());
    for (i, st) in part.stages.iter().enumerate() {
        let compute = st.nodes.len() + st.consts.len() + st.live_ins.len() + st.live_outs.len();
        let memory = st.live_ins.len();
        let by_compute = compute.div_ceil(cluster.compute_objects.max(1));
        let by_memory = memory.div_ceil(cluster.memory_objects.max(1));
        let clusters = by_compute.max(by_memory).max(1);
        let Some((w, h, delay)) = best_rect(clusters, chip_width, chip_height, cluster, &params)
        else {
            return Err(CompileError::StageTooLarge {
                stage: i,
                clusters,
                chip_clusters: usize::from(chip_width) * usize::from(chip_height),
            });
        };
        stages.push(StageShape {
            width: w,
            height: h,
            compute_objects: compute,
            memory_objects: memory,
            est_wire_delay_ns: delay,
        });
    }
    Ok(Shape { stages, year })
}

/// The best `w × h ≥ clusters` rectangle fitting the die, by
/// `(area, (w + h) · t_wire, w)`.
fn best_rect(
    clusters: usize,
    chip_width: u16,
    chip_height: u16,
    cluster: &Cluster,
    params: &YearParams,
) -> Option<(u16, u16, f64)> {
    let mut best: Option<(u16, u16, f64)> = None;
    let mut best_key: Option<(usize, f64, u16)> = None;
    for w in 1..=chip_width {
        let h_min = clusters.div_ceil(usize::from(w));
        if h_min > usize::from(chip_height) {
            continue;
        }
        let h = h_min as u16;
        let area = usize::from(w) * usize::from(h);
        let delay = wire::wire_delay_ns_for((area * cluster.compute_objects) as f64, params);
        let key = (area, f64::from(w + h) * delay, w);
        let better = match &best_key {
            None => true,
            Some((a, p, bw)) => {
                key.0 < *a || (key.0 == *a && (key.1 < *p || (key.1 == *p && key.2 < *bw)))
            }
        };
        if better {
            best_key = Some(key);
            best = Some((w, h, delay));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;
    use crate::partition::partition;

    #[test]
    fn near_square_rectangles_win() {
        let cluster = Cluster::default();
        let p = itrs::year(2012).unwrap();
        // 12 clusters on a big die: 3×4 Pareto-beats 1×12 and 2×6.
        let (w, h, _) = best_rect(12, 32, 32, &cluster, &p).unwrap();
        assert_eq!((w.min(h), w.max(h)), (3, 4));
        // 5 clusters: area 5 (1×5) beats area 6 (2×3) — area first.
        let (w, h, _) = best_rect(5, 32, 32, &cluster, &p).unwrap();
        assert_eq!(usize::from(w) * usize::from(h), 5);
    }

    #[test]
    fn chip_bounds_constrain_the_shape() {
        let cluster = Cluster::default();
        let p = itrs::year(2012).unwrap();
        // A 2-tall die forces 12 clusters into 6×2.
        let (w, h, _) = best_rect(12, 32, 2, &cluster, &p).unwrap();
        assert!(usize::from(w) * usize::from(h) >= 12);
        assert!(h <= 2);
        // Impossible request.
        assert!(best_rect(100, 4, 4, &cluster, &p).is_none());
    }

    #[test]
    fn capacity_counts_cover_the_lowered_datapath() {
        let n = Netlist::parse(
            "graph g\ninput x\ninput y\nconst k 5\nnode a add x k\nnode b mul a y\noutput o b\n",
        )
        .unwrap();
        let part = partition(&n, 12);
        let s = shape(&n, &part, &Cluster::default(), 32, 32, 2012).unwrap();
        assert_eq!(s.stages.len(), 1);
        let st = &s.stages[0];
        // 2 nodes + 1 const + 2 live-ins (x, y) + 1 live-out = 6 compute.
        assert_eq!(st.compute_objects, 6);
        assert_eq!(st.memory_objects, 2);
        // 6 compute / 4 per cluster → 2 clusters.
        assert_eq!(st.clusters(), 2);
        assert!(st.est_wire_delay_ns > 0.0);
    }

    #[test]
    fn oversized_stage_is_a_typed_error() {
        // One stage needing more clusters than a 1×1 die has.
        let mut text = String::from("graph g\ninput x\n");
        let mut prev = "x".to_string();
        for i in 0..12 {
            text.push_str(&format!("node n{i} add {prev} {prev}\n"));
            prev = format!("n{i}");
        }
        text.push_str(&format!("output o {prev}\n"));
        let n = Netlist::parse(&text).unwrap();
        let part = partition(&n, 12);
        let err = shape(&n, &part, &Cluster::default(), 1, 1, 2012).unwrap_err();
        assert!(matches!(err, CompileError::StageTooLarge { .. }));
    }
}

//! Typed compiler errors.

use crate::netlist::NetlistError;

/// Everything that can stop the pipeline, by pass.
#[derive(Clone, PartialEq, Debug)]
pub enum CompileError {
    /// The front-end rejected the text (carries the 1-based line).
    Netlist(NetlistError),
    /// A stage needs more clusters than the whole die has.
    StageTooLarge {
        /// Stage index.
        stage: usize,
        /// Clusters the stage needs.
        clusters: usize,
        /// Clusters the die has.
        chip_clusters: usize,
    },
    /// No free defect-avoiding rectangle fits the stage's shape.
    Unplaceable {
        /// Stage index.
        stage: usize,
        /// Shape width in clusters.
        width: u16,
        /// Shape height in clusters.
        height: u16,
    },
    /// A stage's mailbox channels exceed its region's memory objects
    /// (cannot happen after shaping; kept typed for the pass contract).
    ChannelOverflow {
        /// Stage index.
        stage: usize,
        /// Channels requested.
        channels: usize,
        /// Memory objects the region provides.
        capacity: usize,
    },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Netlist(e) => write!(f, "netlist: {e}"),
            CompileError::StageTooLarge {
                stage,
                clusters,
                chip_clusters,
            } => write!(
                f,
                "stage {stage} needs {clusters} clusters; the die has {chip_clusters}"
            ),
            CompileError::Unplaceable {
                stage,
                width,
                height,
            } => write!(
                f,
                "stage {stage}: no free {width}x{height} region (defects/fragmentation)"
            ),
            CompileError::ChannelOverflow {
                stage,
                channels,
                capacity,
            } => write!(
                f,
                "stage {stage}: {channels} mailbox channels exceed {capacity} memory objects"
            ),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<NetlistError> for CompileError {
    fn from(e: NetlistError) -> CompileError {
        CompileError::Netlist(e)
    }
}

//! `vlsic` — the netlist compiler driver.
//!
//! ```text
//! vlsic [OPTIONS] FILE        compile FILE (netlist text; `-` = stdin)
//!   --emit-after=PASS         dump the named pass's artifact and stop
//!                             (parse|partition|shape|place|channels|
//!                              schedule|pipeline)
//!   --emit-all                dump every pass's artifact
//!   --max-nodes=N             partition capacity (default 12)
//!   --chip=WxH                target die in clusters (default 32x32)
//!   --defect=X,Y              mark a defective cluster (repeatable)
//!   --year=Y                  ITRS year for wire-delay shaping (default 2012)
//!   --datasets=N              deploy on a simulated chip and run N
//!                             seeded datasets through the pipelined
//!                             executor, verifying each output against
//!                             the netlist evaluator
//! ```
//!
//! Without `--emit-*` or `--datasets`, prints a one-line summary per
//! stage plus the program totals. Exit code 1 on any compile error
//! (message on stderr, with 1-based line numbers for front-end errors)
//! or any dataset-verification mismatch.

use std::collections::HashMap;
use std::io::Read as _;
use vlsi_compile::{compile, CompileOptions, Pass};
use vlsi_core::{StagedExecutor, VlsiChip};
use vlsi_prng::Prng;
use vlsi_topology::Cluster;

fn fail(msg: &str) -> ! {
    eprintln!("vlsic: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = CompileOptions::default();
    let mut emit: Option<Pass> = None;
    let mut emit_all = false;
    let mut datasets: Option<usize> = None;
    let mut file: Option<String> = None;
    for arg in &args {
        if let Some(v) = arg.strip_prefix("--emit-after=") {
            match Pass::from_name(v) {
                Some(p) => emit = Some(p),
                None => fail(&format!("unknown pass `{v}`")),
            }
        } else if arg == "--emit-all" {
            emit_all = true;
        } else if let Some(v) = arg.strip_prefix("--max-nodes=") {
            match v.parse::<usize>() {
                Ok(n) if n > 0 => opts.max_nodes_per_stage = n,
                _ => fail(&format!("bad --max-nodes `{v}`")),
            }
        } else if let Some(v) = arg.strip_prefix("--chip=") {
            let Some((w, h)) = v.split_once('x') else {
                fail(&format!("bad --chip `{v}` (expected WxH)"));
            };
            match (w.parse::<u16>(), h.parse::<u16>()) {
                (Ok(w), Ok(h)) if w > 0 && h > 0 => {
                    opts.chip_width = w;
                    opts.chip_height = h;
                }
                _ => fail(&format!("bad --chip `{v}` (expected WxH)")),
            }
        } else if let Some(v) = arg.strip_prefix("--defect=") {
            let Some((x, y)) = v.split_once(',') else {
                fail(&format!("bad --defect `{v}` (expected X,Y)"));
            };
            match (x.parse::<u16>(), y.parse::<u16>()) {
                (Ok(x), Ok(y)) => opts.defects.push(vlsi_topology::Coord::new(x, y)),
                _ => fail(&format!("bad --defect `{v}` (expected X,Y)")),
            }
        } else if let Some(v) = arg.strip_prefix("--year=") {
            match v.parse::<u32>() {
                Ok(y) => opts.year = y,
                Err(_) => fail(&format!("bad --year `{v}`")),
            }
        } else if let Some(v) = arg.strip_prefix("--datasets=") {
            match v.parse::<usize>() {
                Ok(n) if n > 0 => datasets = Some(n),
                _ => fail(&format!("bad --datasets `{v}`")),
            }
        } else if arg.starts_with("--") {
            fail(&format!("unknown option `{arg}`"));
        } else if file.is_none() {
            file = Some(arg.clone());
        } else {
            fail("more than one input file");
        }
    }
    let Some(path) = file else {
        fail("no input file (use `-` for stdin)");
    };

    let text = if path == "-" {
        let mut s = String::new();
        match std::io::stdin().read_to_string(&mut s) {
            Ok(_) => s,
            Err(e) => fail(&format!("stdin: {e}")),
        }
    } else {
        match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => fail(&format!("{path}: {e}")),
        }
    };

    let c = match compile(&text, &opts) {
        Ok(c) => c,
        Err(e) => fail(&format!("{path}: {e}")),
    };

    if emit_all {
        print!("{}", c.emit_all());
    } else if let Some(pass) = emit {
        print!("{}", c.emit_after(pass));
    } else if let Some(n) = datasets {
        // Deploy on a simulated chip and pump N seeded datasets through
        // the pipelined executor, checking every output against the
        // netlist evaluator.
        let mut chip = VlsiChip::new(opts.chip_width, opts.chip_height, Cluster::default());
        for &d in &opts.defects {
            chip.mark_defective(d);
        }
        let exec =
            match StagedExecutor::deploy_placed(&mut chip, c.program.clone(), &c.placement.regions)
            {
                Ok(e) => e,
                Err(e) => fail(&format!("deploy: {e}")),
            };
        let names = c.netlist.input_names();
        let mut rng = Prng::seed_from_u64(2012 ^ n as u64);
        let batch: Vec<HashMap<String, i64>> = (0..n)
            .map(|_| {
                names
                    .iter()
                    .map(|v| (v.to_string(), rng.gen_range(-500..500i32) as i64))
                    .collect()
            })
            .collect();
        let (outs, stats) = match exec.run_pipelined(&mut chip, &batch) {
            Ok(r) => r,
            Err(e) => fail(&format!("pipelined run: {e}")),
        };
        for (i, (env, out)) in batch.iter().zip(&outs).enumerate() {
            let want = c.netlist.evaluate(env);
            if *out != want {
                fail(&format!(
                    "dataset {i}: chip said {out:?}, evaluator {want:?}"
                ));
            }
            println!("dataset {i}: {out:?}");
        }
        println!(
            "{}: {} datasets in {} ticks, depth {}, predicted_ii_ns {:.4}, \
             utilization {}.{:03}",
            c.program.name,
            stats.datasets,
            stats.ticks,
            c.pipeline.depth(),
            c.pipeline.predicted_ii_ns,
            stats.utilization_milli / 1000,
            stats.utilization_milli % 1000
        );
    } else {
        println!(
            "{}: {} nodes, {} stages, {} cut edges, {} channels, {} clusters on {}x{}",
            c.program.name,
            c.netlist.nodes.len(),
            c.partition.stages.len(),
            c.partition.cut_edges,
            c.channels.total,
            c.program.clusters(),
            c.placement.chip_width,
            c.placement.chip_height
        );
        for (i, s) in c.program.stages.iter().enumerate() {
            let (origin, w, h) = c.placement.regions[i]
                .as_rect()
                .expect("placed regions are rects");
            println!(
                "  {}: {w}x{h} @ ({},{}) — {} objects, {} stream elements, {} mailbox channels",
                s.name,
                origin.x,
                origin.y,
                s.objects.len(),
                s.stream.len(),
                s.inputs.len()
            );
        }
    }
}

//! The netlist text format: parse, canonical render, reference evaluate.
//!
//! A netlist is a line-oriented description of a dataflow DAG, in the
//! spirit of the object-code format in `vlsi-workloads::ocode` (same
//! comment syntax, same 1-based-line typed errors):
//!
//! ```text
//! graph dot2                 # exactly one graph line, first
//! input x0                   # external value, written at run time
//! input x1
//! const k 3                  # compile-time constant
//! node p mul x0 k            # node NAME OP A B; A/B defined above
//! node q add p x1
//! output y q                 # program output NAME from node/input
//! ```
//!
//! Operators are the IR's [`BinOp`]s: `add sub mul gt lt eq`, with
//! wrapping arithmetic and 0/1 comparisons. Operands must be *defined
//! before use*, which makes every parsed netlist a DAG by construction
//! — the compiler never needs a cycle check.
//!
//! [`Netlist::render`] emits the canonical form: declarations in node
//! order, outputs last, single spaces, no comments. Parsing canonical
//! text and rendering it again is byte-identical (the round-trip
//! property tests pin this).

use std::collections::HashMap;
use vlsi_workloads::program::BinOp;

/// Parse errors, with the 1-based source line (0 = whole-file).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NetlistError {
    /// 1-based source line; 0 for whole-file errors.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for NetlistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for NetlistError {}

/// Index of a node in [`Netlist::nodes`] (definition order — a
/// topological order by the defined-before-use rule).
pub type NodeId = usize;

/// What a node computes.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum NetOp {
    /// An external input, named by its node.
    Input,
    /// A compile-time constant.
    Const(i64),
    /// A binary operation over two earlier nodes.
    Bin(BinOp, NodeId, NodeId),
}

/// One declared value.
#[derive(Clone, PartialEq, Debug)]
pub struct NetNode {
    /// The value's name.
    pub name: String,
    /// Its definition.
    pub op: NetOp,
}

/// A parsed dataflow graph.
#[derive(Clone, PartialEq, Debug)]
pub struct Netlist {
    /// Graph name (the `graph` line).
    pub name: String,
    /// Values in definition order.
    pub nodes: Vec<NetNode>,
    /// Program outputs: `(output name, producing node)`.
    pub outputs: Vec<(String, NodeId)>,
}

fn op_keyword(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::Gt => "gt",
        BinOp::Lt => "lt",
        BinOp::Eq => "eq",
    }
}

fn parse_op(s: &str) -> Option<BinOp> {
    Some(match s {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "gt" => BinOp::Gt,
        "lt" => BinOp::Lt,
        "eq" => BinOp::Eq,
        _ => return None,
    })
}

impl Netlist {
    /// Parses netlist text. Errors carry the 1-based line number.
    pub fn parse(text: &str) -> Result<Netlist, NetlistError> {
        let mut name: Option<String> = None;
        let mut nodes: Vec<NetNode> = Vec::new();
        let mut outputs: Vec<(String, NodeId)> = Vec::new();
        let mut by_name: HashMap<String, NodeId> = HashMap::new();
        let mut output_names: Vec<String> = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let err = |message: String| NetlistError {
                line: line_no,
                message,
            };
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut tok = line.split_whitespace();
            let kw = tok.next().expect("non-empty line");
            if name.is_none() && kw != "graph" {
                return Err(err("expected `graph NAME` before declarations".into()));
            }
            let define = |n: &str,
                          op: NetOp,
                          nodes: &mut Vec<NetNode>,
                          by_name: &mut HashMap<String, NodeId>|
             -> Result<(), NetlistError> {
                if by_name.contains_key(n) {
                    return Err(err(format!("duplicate name `{n}`")));
                }
                by_name.insert(n.to_string(), nodes.len());
                nodes.push(NetNode {
                    name: n.to_string(),
                    op,
                });
                Ok(())
            };
            match kw {
                "graph" => {
                    if name.is_some() {
                        return Err(err("second `graph` line".into()));
                    }
                    let n = tok.next().ok_or_else(|| err("graph needs a name".into()))?;
                    name = Some(n.to_string());
                }
                "input" => {
                    let n = tok.next().ok_or_else(|| err("input needs a name".into()))?;
                    define(n, NetOp::Input, &mut nodes, &mut by_name)?;
                }
                "const" => {
                    let n = tok.next().ok_or_else(|| err("const needs a name".into()))?;
                    let v = tok
                        .next()
                        .and_then(|t| t.parse::<i64>().ok())
                        .ok_or_else(|| err(format!("const `{n}` needs an integer value")))?;
                    define(n, NetOp::Const(v), &mut nodes, &mut by_name)?;
                }
                "node" => {
                    let n = tok.next().ok_or_else(|| err("node needs a name".into()))?;
                    let op = tok
                        .next()
                        .and_then(parse_op)
                        .ok_or_else(|| err(format!("node `{n}`: unknown operation")))?;
                    let mut operand = |what: &str| -> Result<NodeId, NetlistError> {
                        let t = tok
                            .next()
                            .ok_or_else(|| err(format!("node `{n}` missing {what} operand")))?;
                        by_name
                            .get(t)
                            .copied()
                            .ok_or_else(|| err(format!("undefined operand `{t}`")))
                    };
                    let a = operand("first")?;
                    let b = operand("second")?;
                    define(n, NetOp::Bin(op, a, b), &mut nodes, &mut by_name)?;
                }
                "output" => {
                    let n = tok
                        .next()
                        .ok_or_else(|| err("output needs a name".into()))?;
                    let src = tok
                        .next()
                        .ok_or_else(|| err(format!("output `{n}` needs a source")))?;
                    let id = by_name
                        .get(src)
                        .copied()
                        .ok_or_else(|| err(format!("undefined output source `{src}`")))?;
                    if output_names.contains(&n.to_string()) {
                        return Err(err(format!("duplicate output `{n}`")));
                    }
                    output_names.push(n.to_string());
                    outputs.push((n.to_string(), id));
                }
                other => return Err(err(format!("unknown keyword `{other}`"))),
            }
            if let Some(extra) = tok.next() {
                return Err(err(format!("unexpected token `{extra}`")));
            }
        }
        let name = name.ok_or(NetlistError {
            line: 0,
            message: "empty netlist: no `graph` line".into(),
        })?;
        if outputs.is_empty() {
            return Err(NetlistError {
                line: 0,
                message: format!("graph `{name}` has no outputs"),
            });
        }
        Ok(Netlist {
            name,
            nodes,
            outputs,
        })
    }

    /// The canonical text form: declarations in node order, outputs
    /// last. `parse(render(n)) == n` and rendering is idempotent.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("graph {}\n", self.name));
        for n in &self.nodes {
            match &n.op {
                NetOp::Input => out.push_str(&format!("input {}\n", n.name)),
                NetOp::Const(v) => out.push_str(&format!("const {} {v}\n", n.name)),
                NetOp::Bin(op, a, b) => out.push_str(&format!(
                    "node {} {} {} {}\n",
                    n.name,
                    op_keyword(*op),
                    self.nodes[*a].name,
                    self.nodes[*b].name
                )),
            }
        }
        for (name, id) in &self.outputs {
            out.push_str(&format!("output {name} {}\n", self.nodes[*id].name));
        }
        out
    }

    /// Reference evaluation: computes every node (absent inputs read 0,
    /// matching the hardware's zeroed mailboxes) and returns the output
    /// values in [`Netlist::outputs`] order.
    pub fn evaluate(&self, inputs: &HashMap<String, i64>) -> Vec<i64> {
        let mut values = Vec::with_capacity(self.nodes.len());
        for n in &self.nodes {
            let v = match n.op {
                NetOp::Input => inputs.get(&n.name).copied().unwrap_or(0),
                NetOp::Const(c) => c,
                NetOp::Bin(op, a, b) => op.eval(values[a], values[b]),
            };
            values.push(v);
        }
        self.outputs.iter().map(|(_, id)| values[*id]).collect()
    }

    /// Names of the input nodes, in definition order.
    pub fn input_names(&self) -> Vec<&str> {
        self.nodes
            .iter()
            .filter(|n| n.op == NetOp::Input)
            .map(|n| n.name.as_str())
            .collect()
    }

    /// Number of binary (compute) nodes.
    pub fn bin_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.op, NetOp::Bin(..)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str =
        "graph dot2\ninput x0\ninput x1\nconst k 3\nnode p mul x0 k\nnode q add p x1\noutput y q\n";

    #[test]
    fn parse_render_round_trips_byte_identical() {
        let n = Netlist::parse(SAMPLE).unwrap();
        assert_eq!(n.render(), SAMPLE);
        let again = Netlist::parse(&n.render()).unwrap();
        assert_eq!(again, n);
    }

    #[test]
    fn comments_and_blanks_are_stripped_to_canonical() {
        let noisy = "# header\ngraph dot2\n\ninput x0   # first\ninput x1\nconst k 3\nnode p mul x0 k\nnode q add p x1\noutput y q\n";
        let n = Netlist::parse(noisy).unwrap();
        assert_eq!(n.render(), SAMPLE);
    }

    #[test]
    fn evaluate_matches_hand_computation() {
        let n = Netlist::parse(SAMPLE).unwrap();
        let env = HashMap::from([("x0".to_string(), 7i64), ("x1".to_string(), 5i64)]);
        assert_eq!(n.evaluate(&env), vec![26]);
        // Missing inputs default to zero.
        assert_eq!(n.evaluate(&HashMap::new()), vec![0]);
    }

    #[test]
    fn errors_carry_one_based_line_numbers() {
        let cases = [
            ("graph g\nnode n add a b\noutput y n\n", 2, "undefined"),
            ("graph g\ninput x\ninput x\n", 3, "duplicate"),
            ("graph g\ninput x\nnode n foo x x\n", 3, "unknown operation"),
            ("graph g\nconst k nope\n", 2, "integer"),
            ("input x\n", 1, "expected `graph"),
            ("graph g\ngraph h\n", 2, "second"),
            (
                "graph g\ninput x\noutput y x extra\n",
                3,
                "unexpected token",
            ),
            ("graph g\nwidget w\n", 2, "unknown keyword"),
        ];
        for (text, line, needle) in cases {
            let e = Netlist::parse(text).unwrap_err();
            assert_eq!(e.line, line, "{text:?}: {e}");
            assert!(e.message.contains(needle), "{text:?}: {e}");
        }
        // Whole-file errors use line 0, like ocode's undeclared check.
        let e = Netlist::parse("graph g\ninput x\n").unwrap_err();
        assert_eq!(e.line, 0);
        assert!(e.message.contains("no outputs"));
        let e = Netlist::parse("# only comments\n").unwrap_err();
        assert_eq!(e.line, 0);
    }

    #[test]
    fn corpus_graphs_parse_and_round_trip() {
        for (name, text) in vlsi_workloads::netgen::corpus(2012) {
            let n = Netlist::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(n.name, name);
            assert!(n.bin_count() >= 4, "{name} too small");
            // netgen emits canonical form directly.
            assert_eq!(n.render(), text, "{name} not canonical");
        }
    }
}

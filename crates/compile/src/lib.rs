//! vlsi-compile: a pass-pipeline compiler from dataflow-graph netlists
//! to scheduled AP regions.
//!
//! The paper's §5 sketches the software stack above the VLSI processor:
//! an *application compiler* decides what runs where and in which
//! stream order, and the hardware merely replays the configuration it
//! is handed. This crate is that compiler for the repo's simulated
//! target. It ingests a line-oriented **netlist** text format (a
//! dataflow DAG of binary integer ops, in the spirit of
//! `vlsi-workloads`' ocode assembler) and lowers it through seven
//! explicit, individually testable passes:
//!
//! 1. [`netlist`] — **parse**: text → [`Netlist`], with typed
//!    1-line-numbered errors and a byte-identical [`Netlist::render`]
//!    round trip;
//! 2. [`partition`] — **partition**: the DAG is cut into pipeline
//!    stages of bounded size, generalising the basic-block partitioner
//!    with a cut-size heuristic (operands pull nodes toward their
//!    producers' stages; constants duplicate locally for free);
//! 3. [`shape`] — **shape**: each stage picks a rectangular AP region
//!    sized by the §4 cost model (minimum area, then minimum
//!    perimeter-weighted wire delay for the configured ITRS year);
//! 4. [`place`] — **place**: shapes bind to concrete die coordinates
//!    on a defect-aware [`FabricIndex`](vlsi_topology::FabricIndex)
//!    mirror, largest-first / row-major first-fit;
//! 5. [`channels`] — **channel assignment**: every inter-stage value
//!    gets a CSD mailbox block, checked against memory capacity;
//! 6. [`schedule`] — **schedule**: stages lower to
//!    [`StagedProgram`](vlsi_core::StagedProgram) objects + optimised
//!    configuration streams, directly submittable to the runtime as
//!    [`Workload::Staged`](vlsi_runtime) jobs or executable in-process
//!    via [`StagedExecutor`](vlsi_core::StagedExecutor);
//! 7. [`pipemeta`] — **pipeline**: the scheduled stages' Fig. 7(d)
//!    overlap contract ([`PipelineMeta`]): stage depth, double-buffered
//!    mailbox requirements, and the §4 cost model's predicted
//!    initiation interval for pipelined dataset batches.
//!
//! [`compile`] chains all seven; [`Compilation::emit_after`] dumps any
//! intermediate artifact as deterministic text (the `vlsic` binary's
//! `--emit-after=<pass>` flag). Everything is deterministic per input
//! and options — byte-identical across runs and thread counts, which
//! the CI thread-matrix gate checks.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod channels;
pub mod error;
pub mod netlist;
pub mod partition;
pub mod pipeline;
pub mod pipemeta;
pub mod place;
pub mod schedule;
pub mod shape;

pub use channels::{assign_channels, Channels, StageChannels};
pub use error::CompileError;
pub use netlist::{NetOp, Netlist, NetlistError, NodeId};
pub use partition::{partition, PartStage, Partition};
pub use pipeline::{compile, Compilation, CompileOptions, Pass};
pub use pipemeta::{pipeline_meta, PipelineMeta, StagePipeline};
pub use place::{place, Placement};
pub use schedule::schedule;
pub use shape::{shape, Shape, StageShape};

//! The pipeline-metadata pass: the Fig. 7(d) overlap contract of a
//! compiled program.
//!
//! Once the schedule pass has lowered the stages, this pass derives
//! what a *pipelined* deployment needs to know up front: the stage
//! **depth** (dependency levels — how many datasets are in flight at
//! steady state), the per-stage mailbox **buffer requirement** (every
//! live-in is double-buffered: one word staged by the supervisor while
//! the word in the region's memory block is being consumed), and the
//! predicted **initiation interval** — the §4 cost model's estimate of
//! the time between successive dataset completions, set by the slowest
//! stage rather than the sum of all stages.
//!
//! The stage-time model reuses the shaping pass's numbers: a stage's
//! region is clocked by the global wires that span it
//! (`est_wire_delay_ns`, §4), and each of its physical objects fires
//! once per dataset, so `est_stage_ns = objects × wire_ns`. The
//! predicted II is the maximum stage time; the fill (pipeline start-up)
//! latency is the sum over levels of each level's slowest stage.
//! Ablation IX in EXPERIMENTS.md compares the predicted bottleneck
//! against measured per-stage execution cycles.

use crate::shape::Shape;
use vlsi_core::StagedProgram;

/// Pipeline metadata for one stage.
#[derive(Clone, PartialEq, Debug)]
pub struct StagePipeline {
    /// Stage label (matches the scheduled stage's name).
    pub name: String,
    /// Dependency level the stage executes in (0-based).
    pub level: usize,
    /// Mailbox words the stage's live-ins need with double buffering:
    /// `2 ×` live-ins (one word in the region's block being consumed,
    /// one staged supervisor-side for the next dataset).
    pub buffer_words: usize,
    /// Estimated stage time per dataset (ns): physical objects ×
    /// the region's §4 global-wire delay.
    pub est_stage_ns: f64,
}

/// The pipeline-metadata artifact: depth, levels, per-stage buffer
/// requirements, and the predicted initiation interval.
#[derive(Clone, PartialEq, Debug)]
pub struct PipelineMeta {
    /// Dependency levels (stage indices), in wavefront order.
    pub levels: Vec<Vec<usize>>,
    /// Per-stage metadata, in stage order.
    pub stages: Vec<StagePipeline>,
    /// Predicted initiation interval (ns): the slowest stage's time —
    /// the steady-state per-dataset cost once the pipeline is full.
    pub predicted_ii_ns: f64,
    /// Predicted fill latency (ns): sum over levels of the level's
    /// slowest stage — the cost of the first dataset, which a
    /// sequential walk pays for *every* dataset.
    pub fill_ns: f64,
}

impl PipelineMeta {
    /// Pipeline depth (number of dependency levels).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }
}

/// Derives the pipeline metadata from the scheduled program and the
/// shaping pass's §4 region estimates (one shape per stage, same
/// order).
pub fn pipeline_meta(program: &StagedProgram, shape: &Shape) -> PipelineMeta {
    let levels = program.levels();
    let mut level_of = vec![0usize; program.stages.len()];
    for (l, group) in levels.iter().enumerate() {
        for &j in group {
            level_of[j] = l;
        }
    }
    let stages: Vec<StagePipeline> = program
        .stages
        .iter()
        .enumerate()
        .map(|(j, s)| {
            let sh = &shape.stages[j];
            let objects = sh.compute_objects + sh.memory_objects;
            StagePipeline {
                name: s.name.clone(),
                level: level_of[j],
                buffer_words: 2 * s.inputs.len(),
                est_stage_ns: objects as f64 * sh.est_wire_delay_ns,
            }
        })
        .collect();
    let predicted_ii_ns = stages.iter().map(|s| s.est_stage_ns).fold(0.0, f64::max);
    let fill_ns = levels
        .iter()
        .map(|group| {
            group
                .iter()
                .map(|&j| stages[j].est_stage_ns)
                .fold(0.0, f64::max)
        })
        .sum();
    PipelineMeta {
        levels,
        stages,
        predicted_ii_ns,
        fill_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;
    use crate::partition::partition;
    use crate::place::place;
    use crate::schedule::schedule;
    use crate::shape::shape;
    use vlsi_topology::Cluster;

    fn meta_for(text: &str, max_nodes: usize) -> PipelineMeta {
        let cluster = Cluster::default();
        let n = Netlist::parse(text).unwrap();
        let p = partition(&n, max_nodes);
        let s = shape(&n, &p, &cluster, 16, 16, 2012).unwrap();
        let pl = place(&s, 16, 16, &[]).unwrap();
        let ch = crate::channels::assign_channels(&n, &p, &s, &cluster).unwrap();
        let prog = schedule(&n, &p, &pl, &ch).unwrap();
        pipeline_meta(&prog, &s)
    }

    #[test]
    fn chain_depth_equals_stage_count() {
        // One node per stage forces a strict chain: depth = stages,
        // and the II is the slowest single stage.
        let m = meta_for(
            "graph g\ninput x\nnode a add x x\nnode b mul a a\noutput o b\n",
            1,
        );
        assert_eq!(m.depth(), 2);
        assert_eq!(m.levels, vec![vec![0], vec![1]]);
        let slowest = m.stages.iter().map(|s| s.est_stage_ns).fold(0.0, f64::max);
        assert_eq!(m.predicted_ii_ns, slowest);
        assert!(m.fill_ns >= m.predicted_ii_ns);
        for s in &m.stages {
            assert!(s.buffer_words >= 2, "every stage double-buffers live-ins");
            assert!(s.est_stage_ns > 0.0);
        }
    }

    #[test]
    fn single_stage_fill_equals_ii() {
        let m = meta_for("graph g\ninput x\nnode a add x x\noutput o a\n", 12);
        assert_eq!(m.depth(), 1);
        assert_eq!(m.fill_ns, m.predicted_ii_ns);
    }
}

//! The CSD channel-assignment pass: bind live-ins to mailbox blocks.
//!
//! Inter-stage values travel the way §2.6.2/Figure 7 move data between
//! processors: the producer (or the driver, for graph inputs) writes
//! the consumer's memory block at address 0 while the consumer is
//! inactive. Each stage's memory objects are its CSD-side mailbox
//! channels; this pass assigns every live-in a block index —
//! deterministically, in ascending producer-node order, so the same
//! partition always yields the same channel map — and checks the count
//! against the shaped region's memory capacity.

use crate::error::CompileError;
use crate::netlist::{Netlist, NodeId};
use crate::partition::Partition;
use crate::shape::Shape;
use vlsi_topology::Cluster;

/// One stage's channel map.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StageChannels {
    /// `(producer node, mailbox block index)` in block order 0..n.
    pub bindings: Vec<(NodeId, usize)>,
}

/// The channel-assignment artifact.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Channels {
    /// Per-stage maps, in stage order.
    pub stages: Vec<StageChannels>,
    /// Total mailbox channels across all stages.
    pub total: usize,
}

/// Assigns mailbox blocks for every stage of `part`, validating the
/// count against `shape`'s regions (capacity = clusters × per-cluster
/// memory objects).
pub fn assign_channels(
    netlist: &Netlist,
    part: &Partition,
    shape: &Shape,
    cluster: &Cluster,
) -> Result<Channels, CompileError> {
    let _ = netlist; // bindings derive from the partition's live-ins
    let mut stages = Vec::with_capacity(part.stages.len());
    let mut total = 0usize;
    for (i, st) in part.stages.iter().enumerate() {
        // Live-ins are already ascending by node id; block = position.
        let bindings: Vec<(NodeId, usize)> = st
            .live_ins
            .iter()
            .copied()
            .enumerate()
            .map(|(block, node)| (node, block))
            .collect();
        let capacity = shape.stages[i].clusters() * cluster.memory_objects;
        if bindings.len() > capacity {
            return Err(CompileError::ChannelOverflow {
                stage: i,
                channels: bindings.len(),
                capacity,
            });
        }
        total += bindings.len();
        stages.push(StageChannels { bindings });
    }
    Ok(Channels { stages, total })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;
    use crate::partition::partition;
    use crate::shape::shape;

    #[test]
    fn blocks_are_dense_and_in_producer_order() {
        let n = Netlist::parse(
            "graph g\ninput x\ninput y\nnode a add x y\nnode b mul a y\noutput o b\n",
        )
        .unwrap();
        let cluster = Cluster::default();
        let p = partition(&n, 1); // force two stages
        let s = shape(&n, &p, &cluster, 8, 8, 2012).unwrap();
        let ch = assign_channels(&n, &p, &s, &cluster).unwrap();
        assert_eq!(ch.stages.len(), 2);
        // Stage 0 reads x(0), y(1); stage 1 reads y(1), a(2).
        assert_eq!(ch.stages[0].bindings, vec![(0, 0), (1, 1)]);
        assert_eq!(ch.stages[1].bindings, vec![(1, 0), (2, 1)]);
        assert_eq!(ch.total, 4);
    }

    #[test]
    fn shaped_regions_always_have_channel_capacity() {
        let cluster = Cluster::default();
        for (name, text) in vlsi_workloads::netgen::corpus(2012) {
            let n = Netlist::parse(&text).unwrap();
            let p = partition(&n, 12);
            let s = shape(&n, &p, &cluster, 32, 32, 2012).unwrap();
            let ch =
                assign_channels(&n, &p, &s, &cluster).unwrap_or_else(|e| panic!("{name}: {e}"));
            for (st, sc) in p.stages.iter().zip(&ch.stages) {
                assert_eq!(st.live_ins.len(), sc.bindings.len());
            }
        }
    }
}

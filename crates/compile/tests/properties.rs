//! Property-based tests for the netlist front-end and the pipeline.

use proptest::prelude::*;
use std::collections::HashMap;
use vlsi_compile::{compile, CompileOptions, Netlist};
use vlsi_workloads::netgen::{self, GraphKind};

fn kind_from(sel: u8, size: u8) -> GraphKind {
    match sel % 4 {
        0 => GraphKind::Chain {
            len: 1 + usize::from(size % 48),
        },
        1 => GraphKind::Tree {
            depth: 1 + u32::from(size % 5),
        },
        2 => GraphKind::Butterfly {
            lanes_log2: 1 + u32::from(size % 4),
        },
        _ => GraphKind::Random {
            nodes: 2 + usize::from(size % 40),
        },
    }
}

proptest! {
    /// Any generated netlist round-trips byte-identically:
    /// parse → render reproduces the generator's text, and rendering
    /// a re-parse of the render changes nothing.
    #[test]
    fn netlist_roundtrip_is_byte_identical(seed: u64, sel: u8, size: u8) {
        let text = netgen::generate(kind_from(sel, size), seed);
        let n = Netlist::parse(&text).unwrap();
        let rendered = n.render();
        prop_assert_eq!(&rendered, &text, "render != generator text");
        let n2 = Netlist::parse(&rendered).unwrap();
        prop_assert_eq!(n2.render(), rendered, "second round trip diverged");
    }

    /// The parser is total: arbitrary printable text never panics, and
    /// every rejection carries a line number within the input (or 0 for
    /// whole-file errors) plus a non-empty message.
    #[test]
    fn parser_is_total_with_line_numbers(text in "[ -~\n]{0,300}") {
        match Netlist::parse(&text) {
            Ok(n) => {
                // Accepted text must round-trip through the renderer.
                let r = n.render();
                prop_assert_eq!(Netlist::parse(&r).unwrap().render(), r);
            }
            Err(e) => {
                prop_assert!(e.line <= text.lines().count());
                prop_assert!(!e.message.is_empty());
                prop_assert!(e.to_string().starts_with(&format!("line {}:", e.line)));
            }
        }
    }

    /// Whole-pipeline determinism: compiling the same generated graph
    /// twice yields identical artifacts, and the compiled program's
    /// on-evaluator semantics match the netlist evaluator under random
    /// input environments.
    #[test]
    fn pipeline_is_deterministic_per_seed(seed: u64, sel: u8, size: u8, x: i32, y: i32) {
        let text = netgen::generate(kind_from(sel, size), seed);
        let opts = CompileOptions::default();
        let a = compile(&text, &opts).unwrap();
        let b = compile(&text, &opts).unwrap();
        prop_assert_eq!(a.emit_all(), b.emit_all());
        prop_assert_eq!(&a.program, &b.program);
        // The partition never loses or duplicates semantics: the
        // evaluator's view of the graph is unchanged by compilation.
        let mut env = HashMap::new();
        for (i, name) in a.netlist.input_names().into_iter().enumerate() {
            env.insert(
                name.to_string(),
                if i % 2 == 0 { i64::from(x) } else { i64::from(y) },
            );
        }
        prop_assert_eq!(a.netlist.evaluate(&env), b.netlist.evaluate(&env));
    }
}

/// Malformed inputs produce typed errors pointing at the right 1-based
/// line, mirroring the ocode assembler's contract.
#[test]
fn malformed_inputs_name_the_line() {
    let cases: &[(&str, usize, &str)] = &[
        ("input x\n", 1, "expected `graph"),
        ("graph g\ngraph h\n", 2, "second `graph`"),
        ("graph g\ninput x\ninput x\n", 3, "duplicate name"),
        ("graph g\nnode a xor a b\n", 2, "unknown operation"),
        ("graph g\nconst k banana\n", 2, "needs an integer value"),
        ("graph g\ninput x\nnode a add x ghost\n", 3, "undefined"),
        ("graph g\ninput x\noutput o ghost\n", 3, "undefined"),
        (
            "graph g\ninput x\noutput o x\noutput o x\n",
            4,
            "duplicate output",
        ),
        ("graph g\ninput x trailing\n", 2, "unexpected token"),
        ("graph g\nfrobnicate x\n", 2, "unknown keyword"),
        ("graph g\ninput x\n", 0, "no outputs"),
        ("", 0, "empty netlist"),
        ("# only comments\n\n", 0, "empty netlist"),
    ];
    for (text, line, needle) in cases {
        let e = Netlist::parse(text).unwrap_err();
        assert_eq!(e.line, *line, "{text:?}: {e}");
        assert!(
            e.message.contains(needle),
            "{text:?}: `{e}` lacks `{needle}`"
        );
    }
}

/// The full 12-graph corpus round-trips byte-identically and compiles.
#[test]
fn corpus_roundtrips_and_compiles() {
    let corpus = netgen::corpus(2012);
    assert!(corpus.len() >= 12, "corpus shrank to {}", corpus.len());
    let opts = CompileOptions::default();
    for (name, text) in corpus {
        let n = Netlist::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(n.render(), text, "{name}: round trip not byte-identical");
        compile(&text, &opts).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

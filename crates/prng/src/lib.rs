//! # vlsi-prng — deterministic std-only pseudo-randomness
//!
//! Every stochastic component of the reproduction (the Figure 3 workload
//! generators, the random-datapath fuzzers, the scheduler job mixes, the
//! property-test runner) draws from this one generator so that the whole
//! workspace builds offline and every run is bit-reproducible from its
//! seed.
//!
//! The core is SplitMix64 (Steele, Lea & Flood, "Fast Splittable
//! Pseudorandom Number Generators", OOPSLA 2014): a 64-bit Weyl sequence
//! pushed through a finalizing mixer. It passes BigCrush, needs eight
//! bytes of state, and — crucially for the seeding discipline used across
//! this repo — every `u64` seed yields a full-period, well-mixed stream,
//! so `seed`, `seed + 1`, `seed ^ tag` are all independent-looking
//! streams.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A SplitMix64 pseudo-random number generator.
///
/// ```
/// use vlsi_prng::Prng;
/// let mut a = Prng::seed_from_u64(42);
/// let mut b = Prng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Prng {
    state: u64,
}

impl Prng {
    /// A generator seeded with `seed` (mirrors `SeedableRng::seed_from_u64`).
    pub fn seed_from_u64(seed: u64) -> Prng {
        Prng { state: seed }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        // SplitMix64: golden-gamma Weyl step + Stafford variant 13 mixer.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 32-bit draw (upper half of the 64-bit output).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform draw from `range` (mirrors `Rng::gen_range`). Accepts
    /// half-open (`lo..hi`) and inclusive (`lo..=hi`) ranges over the
    /// integer types implementing [`UniformSample`].
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformSample,
        R: SampleRange<T>,
    {
        let (lo, hi) = range.bounds();
        T::sample(self, lo, hi)
    }

    /// Uniform draw below `bound` with rejection sampling (no modulo
    /// bias). `bound` must be nonzero.
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Reject draws from the tail shorter than `bound`.
        let zone = u64::MAX - u64::MAX.wrapping_rem(bound);
        loop {
            let v = self.next_u64();
            if v < zone || zone == 0 {
                return v.wrapping_rem(bound);
            }
        }
    }

    /// A uniform float in `[0, 1)` (53 random mantissa bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle of `slice`.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element of `slice`, or `None` if it is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_range(0..slice.len())])
        }
    }

    /// An independent child generator (the "split" of SplitMix64): the
    /// child's seed is a fresh draw, so parent and child streams do not
    /// overlap in practice.
    pub fn split(&mut self) -> Prng {
        Prng::seed_from_u64(self.next_u64())
    }
}

/// Integer types [`Prng::gen_range`] can sample uniformly.
pub trait UniformSample: Copy + PartialOrd {
    /// A uniform draw from `[lo, hi]` (both inclusive).
    fn sample(rng: &mut Prng, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample(rng: &mut Prng, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

macro_rules! uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformSample for $t {
            fn sample(rng: &mut Prng, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

uniform_unsigned!(u8, u16, u32, u64, usize);
uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Ranges [`Prng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// The `(lo, hi)` inclusive bounds of the range.
    fn bounds(&self) -> (T, T);
}

impl<T: UniformSample + Bounded> SampleRange<T> for Range<T> {
    fn bounds(&self) -> (T, T) {
        (self.start, self.end.prev())
    }
}

impl<T: UniformSample> SampleRange<T> for RangeInclusive<T> {
    fn bounds(&self) -> (T, T) {
        (*self.start(), *self.end())
    }
}

/// Helper for converting a half-open upper bound to an inclusive one.
pub trait Bounded {
    /// The predecessor value (`self - 1`).
    fn prev(self) -> Self;
}

macro_rules! bounded {
    ($($t:ty),*) => {$(
        impl Bounded for $t {
            fn prev(self) -> $t {
                self.checked_sub(1).expect("empty range")
            }
        }
    )*};
}

bounded!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Prng::seed_from_u64(7);
        let mut b = Prng::seed_from_u64(7);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = Prng::seed_from_u64(8);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs of SplitMix64 for seed 0 (from the public
        // domain implementation by Sebastiano Vigna).
        let mut r = Prng::seed_from_u64(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Prng::seed_from_u64(123);
        for _ in 0..10_000 {
            let x: i64 = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&x));
            let y: usize = r.gen_range(3usize..17);
            assert!((3..17).contains(&y));
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = Prng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values reachable: {seen:?}");
    }

    #[test]
    fn signed_full_range() {
        let mut r = Prng::seed_from_u64(9);
        // Degenerate single-value ranges.
        assert_eq!(r.gen_range(4i64..=4), 4);
        assert_eq!(r.gen_range(-3i64..-2), -3);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Prng::seed_from_u64(77);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn bool_probability_sane() {
        let mut r = Prng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}

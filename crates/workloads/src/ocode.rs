//! Object code: a textual interface to the VLSI processor.
//!
//! §1 poses the interface question directly: "Because an AP does not
//! require an instruction-set architecture in its basic model, we need to
//! investigate how to interface between the VLSI processor and its
//! application." §2.4 adds that "the dependency distance can be observed
//! by an object code showing the object IDs". This module is that object
//! code: a line-oriented text form of logical objects plus the global
//! configuration stream, with an assembler and a disassembler that
//! round-trip.
//!
//! ```text
//! # y = 3*x + 5 over an 8-element stream
//! object 1000 load  init=0,0,8        # memory object, block 0, len 8
//! object 0    mulimm imm=3
//! object 1    addimm imm=5
//! object 1001 store init=0,1,0        # memory object, block 1
//! element 0    lhs=1000
//! element 1    lhs=0
//! element 1001 rhs=1
//! ```

use std::fmt::Write as _;
use vlsi_object::{
    GlobalConfigElement, GlobalConfigStream, LocalConfig, LogicalObject, ObjectId, Operation, Word,
};

/// Assembly errors, with the 1-based line number.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OcodeError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for OcodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for OcodeError {}

fn op_name(op: Operation) -> String {
    format!("{op:?}").to_lowercase()
}

fn parse_op(s: &str) -> Option<Operation> {
    vlsi_object::op::ALL_OPERATIONS
        .iter()
        .copied()
        .find(|&op| op_name(op) == s)
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else if let Some(neg) = s.strip_prefix('-') {
        neg.parse::<i64>().ok().map(|v| (-v) as u64)
    } else {
        s.parse::<u64>().ok()
    }
}

/// Assembles object-code text into installable objects and a stream.
///
/// ```
/// let (objects, stream) = vlsi_workloads::assemble(
///     "object 0 const imm=2\n\
///      object 1 mulimm imm=21\n\
///      element 1 lhs=0",
/// )
/// .unwrap();
/// assert_eq!(objects.len(), 2);
/// assert_eq!(stream.len(), 1);
/// assert_eq!(stream.working_set().len(), 2);
/// ```
pub fn assemble(text: &str) -> Result<(Vec<LogicalObject>, GlobalConfigStream), OcodeError> {
    let mut objects: Vec<LogicalObject> = Vec::new();
    let mut stream = GlobalConfigStream::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let err = |message: String| OcodeError {
            line: line_no,
            message,
        };
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        match tokens.next() {
            Some("object") => {
                let id = tokens
                    .next()
                    .and_then(|t| t.parse::<u32>().ok())
                    .ok_or_else(|| err("object needs a numeric ID".into()))?;
                let op = tokens
                    .next()
                    .and_then(parse_op)
                    .ok_or_else(|| err("unknown operation".into()))?;
                let mut imm = Word::ZERO;
                let mut init: Vec<Word> = Vec::new();
                for t in tokens {
                    if let Some(v) = t.strip_prefix("imm=") {
                        imm = Word(parse_u64(v).ok_or_else(|| err(format!("bad imm '{v}'")))?);
                    } else if let Some(v) = t.strip_prefix("init=") {
                        init = v
                            .split(',')
                            .map(|x| {
                                parse_u64(x)
                                    .map(Word)
                                    .ok_or_else(|| err(format!("bad init word '{x}'")))
                            })
                            .collect::<Result<_, _>>()?;
                    } else {
                        return Err(err(format!("unexpected token '{t}'")));
                    }
                }
                let obj = if op.is_memory_op() {
                    LogicalObject::memory(ObjectId(id), LocalConfig::with_imm(op, imm))
                } else {
                    LogicalObject::compute(ObjectId(id), LocalConfig::with_imm(op, imm))
                }
                .with_init(init);
                if objects.iter().any(|o| o.id == obj.id) {
                    return Err(err(format!("duplicate object {id}")));
                }
                objects.push(obj);
            }
            Some("element") => {
                let sink = tokens
                    .next()
                    .and_then(|t| t.parse::<u32>().ok())
                    .ok_or_else(|| err("element needs a numeric sink ID".into()))?;
                let mut e = GlobalConfigElement::nullary(ObjectId(sink));
                for t in tokens {
                    let (port, v) = t
                        .split_once('=')
                        .ok_or_else(|| err(format!("expected port=id, got '{t}'")))?;
                    let id = v
                        .parse::<u32>()
                        .map(ObjectId)
                        .map_err(|_| err(format!("bad object ID '{v}'")))?;
                    match port {
                        "lhs" => e.src_lhs = Some(id),
                        "rhs" => e.src_rhs = Some(id),
                        "pred" => e.src_pred = Some(id),
                        _ => return Err(err(format!("unknown port '{port}'"))),
                    }
                }
                stream.push(e);
            }
            Some(other) => {
                return Err(err(format!(
                    "expected 'object' or 'element', got '{other}'"
                )))
            }
            None => unreachable!("blank lines are skipped"),
        }
    }
    // Every referenced object must be declared.
    for (i, e) in stream.elements().iter().enumerate() {
        for id in e.referenced() {
            if !objects.iter().any(|o| o.id == id) {
                return Err(OcodeError {
                    line: 0,
                    message: format!("element {i} references undeclared object {id}"),
                });
            }
        }
    }
    Ok((objects, stream))
}

/// Renders objects and a stream back to object-code text (assembles to an
/// identical program).
pub fn disassemble(objects: &[LogicalObject], stream: &GlobalConfigStream) -> String {
    let mut out = String::new();
    for o in objects {
        write!(out, "object {} {}", o.id.0, op_name(o.cfg.op)).unwrap();
        if o.cfg.imm != Word::ZERO {
            write!(out, " imm={}", o.cfg.imm.0).unwrap();
        }
        if !o.init.is_empty() {
            let words: Vec<String> = o.init.iter().map(|w| w.0.to_string()).collect();
            write!(out, " init={}", words.join(",")).unwrap();
        }
        writeln!(out).unwrap();
    }
    for e in stream.elements() {
        write!(out, "element {}", e.sink.0).unwrap();
        if let Some(s) = e.src_lhs {
            write!(out, " lhs={}", s.0).unwrap();
        }
        if let Some(s) = e.src_rhs {
            write!(out, " rhs={}", s.0).unwrap();
        }
        if let Some(s) = e.src_pred {
            write!(out, " pred={}", s.0).unwrap();
        }
        writeln!(out).unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const AXPY: &str = r"
# y = 3*x + 5 over an 8-element stream
object 1000 load  init=0,0,8
object 0    mulimm imm=3
object 1    addimm imm=5
object 1001 store init=0,1,0
element 0    lhs=1000
element 1    lhs=0
element 1001 rhs=1
";

    #[test]
    fn assembles_a_kernel() {
        let (objects, stream) = assemble(AXPY).unwrap();
        assert_eq!(objects.len(), 4);
        assert_eq!(stream.len(), 3);
        let load = objects.iter().find(|o| o.id == ObjectId(1000)).unwrap();
        assert_eq!(load.cfg.op, Operation::Load);
        assert_eq!(load.kind, vlsi_object::ObjectKind::Memory);
        assert_eq!(load.init[2], Word(8));
        let mul = objects.iter().find(|o| o.id == ObjectId(0)).unwrap();
        assert_eq!(mul.cfg.imm, Word(3));
        assert_eq!(stream.elements()[2].src_rhs, Some(ObjectId(1)));
    }

    #[test]
    fn roundtrip() {
        let (objects, stream) = assemble(AXPY).unwrap();
        let text = disassemble(&objects, &stream);
        let (objects2, stream2) = assemble(&text).unwrap();
        assert_eq!(objects, objects2);
        assert_eq!(stream, stream2);
    }

    #[test]
    fn all_operations_roundtrip_names() {
        for &op in vlsi_object::op::ALL_OPERATIONS {
            assert_eq!(parse_op(&op_name(op)), Some(op), "{op:?}");
        }
    }

    #[test]
    fn error_reporting_with_lines() {
        let e = assemble("object 0 iadd\nelemen 1").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("elemen"));

        let e = assemble("object 0 frobnicate").unwrap_err();
        assert!(e.message.contains("unknown operation"));

        let e = assemble("object 0 iadd\nobject 0 isub").unwrap_err();
        assert!(e.message.contains("duplicate"));

        let e = assemble("element 5 lhs=6").unwrap_err();
        assert!(e.message.contains("undeclared"));

        let e = assemble("object 0 iadd\nelement 0 bogus=1").unwrap_err();
        assert!(e.message.contains("port"));
    }

    #[test]
    fn hex_and_negative_immediates() {
        let (objects, _) = assemble("object 0 const imm=0xff\nobject 1 const imm=-2").unwrap();
        assert_eq!(objects[0].cfg.imm, Word(0xff));
        assert_eq!(objects[1].cfg.imm, Word::from_i64(-2));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let (objects, stream) = assemble("\n# nothing\nobject 0 pass # trailing\n\n").unwrap();
        assert_eq!(objects.len(), 1);
        assert!(stream.is_empty());
    }
}

//! Random datapaths over real objects, with a locality parameter.
//!
//! The Figure 3 generator (in `vlsi-csd`) works on positions; this one
//! works at the object level: it produces installable logical objects and
//! a global configuration stream whose dependency structure has the same
//! locality knob. Used for pipeline/cache characterisation (Ablation B)
//! and fuzzing the full configure/execute path.

use vlsi_object::{
    GlobalConfigElement, GlobalConfigStream, LocalConfig, LogicalObject, ObjectId, Operation, Word,
};
use vlsi_prng::Prng;

/// Generator parameters.
#[derive(Clone, Copy, Debug)]
pub struct RandomDatapath {
    /// Distinct objects the stream draws from.
    pub n_objects: u32,
    /// Stream elements to generate.
    pub n_elements: usize,
    /// Locality in `[0, 1]` — 1.0 keeps each element's source equal to its
    /// sink's predecessor in ID space (dependency distance ≈ 0); 0.0 draws
    /// sources uniformly.
    pub locality: f64,
    /// RNG seed.
    pub seed: u64,
}

impl RandomDatapath {
    /// The logical objects the stream may reference: object 0 is a
    /// constant seed, the rest are cheap unary operators (so any generated
    /// chain executes deterministically).
    pub fn objects(&self) -> Vec<LogicalObject> {
        (0..self.n_objects)
            .map(|i| {
                if i == 0 {
                    LogicalObject::compute(
                        ObjectId(0),
                        LocalConfig::with_imm(Operation::Const, Word(1)),
                    )
                } else {
                    let op = match i % 3 {
                        0 => Operation::AddImm,
                        1 => Operation::MulImm,
                        _ => Operation::Pass,
                    };
                    LogicalObject::compute(
                        ObjectId(i),
                        LocalConfig::with_imm(op, Word(u64::from(i % 7 + 1))),
                    )
                }
            })
            .collect()
    }

    /// Generates the element stream.
    ///
    /// Each element's source is "the preceding sink object ID and an
    /// offset" (§2.6.2): at high locality the offset is ~0, so every
    /// element consumes the object the stream *just produced* — small
    /// dependency (stack) distances, the temporal-locality sense of the
    /// CACHE model. Low locality displaces the source anywhere, producing
    /// long reuse distances.
    pub fn stream(&self) -> GlobalConfigStream {
        assert!(self.n_objects >= 2);
        let n = i64::from(self.n_objects);
        let mut rng = Prng::seed_from_u64(self.seed);
        let max_off = ((1.0 - self.locality.clamp(0.0, 1.0)) * (n - 1) as f64).round() as i64;
        let mut prev_sink = 0i64;
        (0..self.n_elements)
            .map(|_| {
                let sink = rng.gen_range(1..n); // 0 stays a pure source
                let off = if max_off == 0 {
                    0
                } else {
                    rng.gen_range(-max_off..=max_off)
                };
                // Source = the preceding element's sink ID + offset.
                let source = (prev_sink + off).clamp(0, n - 1);
                prev_sink = sink;
                GlobalConfigElement::unary(ObjectId(sink as u32), ObjectId(source as u32))
            })
            .collect()
    }

    /// Mean dependency distance of a generated stream — the measured
    /// locality (for plotting against the knob).
    pub fn mean_dependency_distance(stream: &GlobalConfigStream) -> f64 {
        let d = stream.dependency_distances();
        let finite: Vec<usize> = d.iter().filter_map(|(_, x)| *x).collect();
        if finite.is_empty() {
            return 0.0;
        }
        finite.iter().sum::<usize>() as f64 / finite.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let g = RandomDatapath {
            n_objects: 16,
            n_elements: 64,
            locality: 0.5,
            seed: 9,
        };
        assert_eq!(g.stream(), g.stream());
    }

    #[test]
    fn objects_are_installable() {
        let g = RandomDatapath {
            n_objects: 8,
            n_elements: 10,
            locality: 0.5,
            seed: 1,
        };
        for o in g.objects() {
            o.validate().unwrap();
        }
        assert_eq!(g.objects().len(), 8);
    }

    #[test]
    fn locality_controls_dependency_distance() {
        let tight = RandomDatapath {
            n_objects: 64,
            n_elements: 512,
            locality: 1.0,
            seed: 3,
        };
        let loose = RandomDatapath {
            locality: 0.0,
            ..tight
        };
        let dt = RandomDatapath::mean_dependency_distance(&tight.stream());
        let dl = RandomDatapath::mean_dependency_distance(&loose.stream());
        assert!(dt < dl, "tight {dt} !< loose {dl}");
    }

    #[test]
    fn stream_references_stay_in_range() {
        let g = RandomDatapath {
            n_objects: 8,
            n_elements: 100,
            locality: 0.0,
            seed: 17,
        };
        for e in g.stream().elements() {
            for id in e.referenced() {
                assert!(id.0 < 8);
            }
        }
    }
}

//! A miniature imperative IR, the basic-block partitioner, and the
//! block→datapath compiler.
//!
//! §1 and §3.3: control flow breaks the regular reconfiguration of a
//! scaled AP, so "the basic blocks, which are partitioned by the
//! control-flow, are mapped to the VLSI processor" as isolated processors
//! that communicate through memory. [`Program::partition`] performs the
//! Figure 7(a)→(b) step: it cuts an `if`-structured program into
//! straight-line [`BasicBlock`]s joined by explicit terminators;
//! [`BlockDatapath::compile`] turns one basic block into logical objects
//! plus a global configuration stream that an AP can run.
//!
//! The IR is deliberately tiny — just enough to express the paper's
//! example and its relatives — because the point is the partitioning and
//! the mapping, not language design.

use std::collections::HashMap;
use vlsi_object::{
    GlobalConfigElement, GlobalConfigStream, LocalConfig, LogicalObject, ObjectId, Operation, Word,
};

/// Binary operators of the IR.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed greater-than (produces 0/1).
    Gt,
    /// Signed less-than.
    Lt,
    /// Equality.
    Eq,
}

impl BinOp {
    /// The AP operation implementing this operator (used by both the
    /// block→datapath compiler here and the netlist compiler in
    /// `vlsi-compile`).
    pub fn operation(self) -> Operation {
        match self {
            BinOp::Add => Operation::IAdd,
            BinOp::Sub => Operation::ISub,
            BinOp::Mul => Operation::IMul,
            BinOp::Gt => Operation::ICmpGt,
            BinOp::Lt => Operation::ICmpLt,
            BinOp::Eq => Operation::ICmpEq,
        }
    }

    /// Reference semantics: wrapping arithmetic, 0/1 comparisons.
    pub fn eval(self, a: i64, b: i64) -> i64 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Gt => i64::from(a > b),
            BinOp::Lt => i64::from(a < b),
            BinOp::Eq => i64::from(a == b),
        }
    }
}

/// Expressions.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// A named variable.
    Var(String),
    /// A literal.
    Const(i64),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Shorthand for a variable reference.
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_string())
    }

    /// Shorthand for a binary node.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }

    /// Reference interpreter.
    pub fn eval(&self, env: &HashMap<String, i64>) -> i64 {
        match self {
            Expr::Var(v) => *env.get(v).unwrap_or(&0),
            Expr::Const(c) => *c,
            Expr::Bin(op, a, b) => op.eval(a.eval(env), b.eval(env)),
        }
    }

    /// Variables read by this expression.
    pub fn free_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Var(v) => {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            Expr::Const(_) => {}
            Expr::Bin(_, a, b) => {
                a.free_vars(out);
                b.free_vars(out);
            }
        }
    }
}

/// Statements.
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// `name = expr`.
    Assign(String, Expr),
    /// `if (cond) { then } else { else }`.
    If {
        /// Branch condition (non-zero = taken).
        cond: Expr,
        /// Taken branch.
        then_branch: Vec<Stmt>,
        /// Not-taken branch.
        else_branch: Vec<Stmt>,
    },
}

/// How a basic block ends.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Terminator {
    /// Fall through to another block.
    Jump(usize),
    /// Two-way branch on the block's condition tap.
    Branch {
        /// Block when the condition is non-zero.
        then_block: usize,
        /// Block when the condition is zero.
        else_block: usize,
    },
    /// Program end.
    End,
}

/// A straight-line block: assignments, an optional branch condition, and a
/// terminator.
#[derive(Clone, PartialEq, Debug)]
pub struct BasicBlock {
    /// Block index.
    pub id: usize,
    /// Straight-line assignments, in order.
    pub assigns: Vec<(String, Expr)>,
    /// Condition evaluated at the end of the block (for `Branch`).
    pub cond: Option<Expr>,
    /// Control-flow successor(s).
    pub terminator: Terminator,
}

impl BasicBlock {
    /// Variables this block reads before writing (its live-in mailbox).
    pub fn inputs(&self) -> Vec<String> {
        let mut reads = Vec::new();
        let mut written: Vec<&str> = Vec::new();
        for (name, e) in &self.assigns {
            let mut vars = Vec::new();
            e.free_vars(&mut vars);
            for v in vars {
                if !written.contains(&v.as_str()) && !reads.contains(&v) {
                    reads.push(v);
                }
            }
            written.push(name);
        }
        if let Some(c) = &self.cond {
            let mut vars = Vec::new();
            c.free_vars(&mut vars);
            for v in vars {
                if !written.contains(&v.as_str()) && !reads.contains(&v) {
                    reads.push(v);
                }
            }
        }
        reads
    }

    /// Variables this block writes (its live-out mailbox).
    pub fn outputs(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (name, _) in &self.assigns {
            if !out.contains(name) {
                out.push(name.clone());
            }
        }
        out
    }
}

/// A program: a statement list.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Program {
    /// Top-level statements.
    pub stmts: Vec<Stmt>,
}

impl Program {
    /// Reference interpreter: runs the program over `env` in place.
    pub fn interpret(&self, env: &mut HashMap<String, i64>) {
        fn run(stmts: &[Stmt], env: &mut HashMap<String, i64>) {
            for s in stmts {
                match s {
                    Stmt::Assign(name, e) => {
                        let v = e.eval(env);
                        env.insert(name.clone(), v);
                    }
                    Stmt::If {
                        cond,
                        then_branch,
                        else_branch,
                    } => {
                        if cond.eval(env) != 0 {
                            run(then_branch, env);
                        } else {
                            run(else_branch, env);
                        }
                    }
                }
            }
        }
        run(&self.stmts, env);
    }

    /// Partitions the program into basic blocks (Figure 7(a)→(b)).
    pub fn partition(&self) -> Vec<BasicBlock> {
        let mut blocks: Vec<BasicBlock> = Vec::new();
        let entry = Self::lower(&self.stmts, &mut blocks, None);
        debug_assert_eq!(entry, 0, "entry block is block 0");
        blocks
    }

    /// Lowers a statement list into blocks; returns the entry block ID.
    /// `cont` is the block to jump to after the list (None = End).
    fn lower(stmts: &[Stmt], blocks: &mut Vec<BasicBlock>, cont: Option<usize>) -> usize {
        let id = blocks.len();
        blocks.push(BasicBlock {
            id,
            assigns: Vec::new(),
            cond: None,
            terminator: match cont {
                Some(c) => Terminator::Jump(c),
                None => Terminator::End,
            },
        });
        let mut i = 0;
        while i < stmts.len() {
            match &stmts[i] {
                Stmt::Assign(name, e) => {
                    blocks[id].assigns.push((name.clone(), e.clone()));
                    i += 1;
                }
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    // Everything after the if becomes the continuation.
                    let rest = &stmts[i + 1..];
                    let join = if rest.is_empty() {
                        cont
                    } else {
                        Some(Self::lower(rest, blocks, cont))
                    };
                    let then_id = Self::lower(then_branch, blocks, join);
                    let else_id = Self::lower(else_branch, blocks, join);
                    blocks[id].cond = Some(cond.clone());
                    blocks[id].terminator = Terminator::Branch {
                        then_block: then_id,
                        else_block: else_id,
                    };
                    return id;
                }
            }
        }
        id
    }

    /// Interprets the partitioned form (reference for multi-AP execution):
    /// walks blocks through terminators.
    pub fn interpret_blocks(blocks: &[BasicBlock], env: &mut HashMap<String, i64>) {
        let mut cur = 0usize;
        let mut steps = 0;
        loop {
            steps += 1;
            assert!(steps <= blocks.len() + 1, "block graph must be acyclic");
            let b = &blocks[cur];
            for (name, e) in &b.assigns {
                let v = e.eval(env);
                env.insert(name.clone(), v);
            }
            match &b.terminator {
                Terminator::End => break,
                Terminator::Jump(n) => cur = *n,
                Terminator::Branch {
                    then_block,
                    else_block,
                } => {
                    let c = b.cond.as_ref().expect("branch has a condition").eval(env);
                    cur = if c != 0 { *then_block } else { *else_block };
                }
            }
        }
    }
}

/// A basic block compiled to a datapath.
#[derive(Clone, Debug)]
pub struct BlockDatapath {
    /// The source block's ID.
    pub block_id: usize,
    /// Logical objects of the datapath (all compute).
    pub objects: Vec<LogicalObject>,
    /// Configuration stream chaining them.
    pub stream: GlobalConfigStream,
    /// Live-in variables and the constant objects to patch with their
    /// values at invocation.
    pub inputs: Vec<(String, ObjectId)>,
    /// Live-out variables and the objects computing them.
    pub outputs: Vec<(String, ObjectId)>,
    /// The object computing the branch condition, if the block branches.
    pub cond: Option<ObjectId>,
}

impl BlockDatapath {
    /// Compiles one basic block into objects and a stream.
    ///
    /// Live-in variables become `Const` objects whose immediate the caller
    /// patches (via [`patched_objects`](Self::patched_objects)) before
    /// configuring — modelling the preceding processor writing the mailbox
    /// while this one is inactive.
    pub fn compile(block: &BasicBlock) -> BlockDatapath {
        let mut next_id = 0u32;
        let mut alloc = |objects: &mut Vec<LogicalObject>, cfg: LocalConfig| {
            let id = ObjectId(next_id);
            next_id += 1;
            objects.push(LogicalObject::compute(id, cfg));
            id
        };
        let mut objects = Vec::new();
        let mut stream = GlobalConfigStream::new();
        let mut env: HashMap<String, ObjectId> = HashMap::new();
        let mut inputs: Vec<(String, ObjectId)> = Vec::new();

        fn compile_expr(
            e: &Expr,
            objects: &mut Vec<LogicalObject>,
            stream: &mut GlobalConfigStream,
            env: &mut HashMap<String, ObjectId>,
            inputs: &mut Vec<(String, ObjectId)>,
            alloc: &mut impl FnMut(&mut Vec<LogicalObject>, LocalConfig) -> ObjectId,
        ) -> ObjectId {
            match e {
                Expr::Var(v) => {
                    if let Some(&id) = env.get(v) {
                        return id;
                    }
                    let id = alloc(objects, LocalConfig::op(Operation::Const));
                    stream.push(GlobalConfigElement::nullary(id));
                    env.insert(v.clone(), id);
                    inputs.push((v.clone(), id));
                    id
                }
                Expr::Const(c) => {
                    let id = alloc(
                        objects,
                        LocalConfig::with_imm(Operation::Const, Word::from_i64(*c)),
                    );
                    stream.push(GlobalConfigElement::nullary(id));
                    id
                }
                Expr::Bin(op, a, b) => {
                    let ia = compile_expr(a, objects, stream, env, inputs, alloc);
                    let ib = compile_expr(b, objects, stream, env, inputs, alloc);
                    let id = alloc(objects, LocalConfig::op(op.operation()));
                    stream.push(GlobalConfigElement::binary(id, ia, ib));
                    id
                }
            }
        }

        let mut outputs = Vec::new();
        for (name, e) in &block.assigns {
            let id = compile_expr(
                e,
                &mut objects,
                &mut stream,
                &mut env,
                &mut inputs,
                &mut alloc,
            );
            env.insert(name.clone(), id);
            outputs.retain(|(n, _): &(String, ObjectId)| n != name);
            outputs.push((name.clone(), id));
        }
        let cond = block.cond.as_ref().map(|c| {
            compile_expr(
                c,
                &mut objects,
                &mut stream,
                &mut env,
                &mut inputs,
                &mut alloc,
            )
        });
        BlockDatapath {
            block_id: block.id,
            objects,
            stream,
            inputs,
            outputs,
            cond,
        }
    }

    /// The objects with live-in constants patched to `values` (missing
    /// variables default to 0).
    pub fn patched_objects(&self, values: &HashMap<String, i64>) -> Vec<LogicalObject> {
        let mut objs = self.objects.clone();
        for (var, id) in &self.inputs {
            let v = values.get(var).copied().unwrap_or(0);
            if let Some(o) = objs.iter_mut().find(|o| o.id == *id) {
                o.cfg.imm = Word::from_i64(v);
            }
        }
        objs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `if (x>y) z=x+1 else z=y+2; w=z*3`
    fn sample() -> Program {
        Program {
            stmts: vec![
                Stmt::If {
                    cond: Expr::bin(BinOp::Gt, Expr::var("x"), Expr::var("y")),
                    then_branch: vec![Stmt::Assign(
                        "z".into(),
                        Expr::bin(BinOp::Add, Expr::var("x"), Expr::Const(1)),
                    )],
                    else_branch: vec![Stmt::Assign(
                        "z".into(),
                        Expr::bin(BinOp::Add, Expr::var("y"), Expr::Const(2)),
                    )],
                },
                Stmt::Assign(
                    "w".into(),
                    Expr::bin(BinOp::Mul, Expr::var("z"), Expr::Const(3)),
                ),
            ],
        }
    }

    #[test]
    fn interpreter_reference() {
        let p = sample();
        let mut env = HashMap::from([("x".to_string(), 9i64), ("y".to_string(), 4)]);
        p.interpret(&mut env);
        assert_eq!(env["z"], 10);
        assert_eq!(env["w"], 30);
        let mut env = HashMap::from([("x".to_string(), 2i64), ("y".to_string(), 5)]);
        p.interpret(&mut env);
        assert_eq!(env["z"], 7);
        assert_eq!(env["w"], 21);
    }

    #[test]
    fn partition_produces_four_blocks() {
        let blocks = sample().partition();
        // entry (cond), join (w=z*3), then, else.
        assert_eq!(blocks.len(), 4);
        assert!(matches!(blocks[0].terminator, Terminator::Branch { .. }));
        assert!(blocks[0].cond.is_some());
        // Both arms join at the continuation block.
        let Terminator::Branch {
            then_block,
            else_block,
        } = blocks[0].terminator
        else {
            unreachable!()
        };
        assert_eq!(blocks[then_block].terminator, Terminator::Jump(1));
        assert_eq!(blocks[else_block].terminator, Terminator::Jump(1));
        assert_eq!(blocks[1].terminator, Terminator::End);
    }

    #[test]
    fn block_interpretation_matches_direct() {
        let p = sample();
        let blocks = p.partition();
        for (x, y) in [(9i64, 4i64), (2, 5), (5, 5), (-3, -7)] {
            let mut direct = HashMap::from([("x".to_string(), x), ("y".to_string(), y)]);
            p.interpret(&mut direct);
            let mut blocked = HashMap::from([("x".to_string(), x), ("y".to_string(), y)]);
            Program::interpret_blocks(&blocks, &mut blocked);
            assert_eq!(direct, blocked, "x={x} y={y}");
        }
    }

    #[test]
    fn live_in_and_out() {
        let blocks = sample().partition();
        let entry = &blocks[0];
        assert_eq!(entry.inputs(), vec!["x".to_string(), "y".to_string()]);
        assert!(entry.outputs().is_empty());
        let join = &blocks[1];
        assert_eq!(join.inputs(), vec!["z".to_string()]);
        assert_eq!(join.outputs(), vec!["w".to_string()]);
    }

    #[test]
    fn compiled_block_shape() {
        let blocks = sample().partition();
        let dp = BlockDatapath::compile(&blocks[0]);
        // Two input constants + one compare.
        assert_eq!(dp.inputs.len(), 2);
        assert!(dp.cond.is_some());
        assert_eq!(dp.objects.len(), 3);
        // Patching installs live values.
        let vals = HashMap::from([("x".to_string(), 7i64)]);
        let objs = dp.patched_objects(&vals);
        let x_obj = objs.iter().find(|o| o.id == dp.inputs[0].1).unwrap();
        assert_eq!(x_obj.cfg.imm, Word::from_i64(7));
    }

    #[test]
    fn var_reuse_fans_out_one_object() {
        // x*x reads the same input object twice.
        let b = BasicBlock {
            id: 0,
            assigns: vec![(
                "y".into(),
                Expr::bin(BinOp::Mul, Expr::var("x"), Expr::var("x")),
            )],
            cond: None,
            terminator: Terminator::End,
        };
        let dp = BlockDatapath::compile(&b);
        assert_eq!(dp.inputs.len(), 1);
        assert_eq!(dp.objects.len(), 2); // const x + mul
        let mul = dp.stream.elements().last().unwrap();
        assert_eq!(mul.src_lhs, mul.src_rhs);
    }

    #[test]
    fn nested_ifs_partition_cleanly() {
        let p = Program {
            stmts: vec![Stmt::If {
                cond: Expr::bin(BinOp::Gt, Expr::var("a"), Expr::Const(0)),
                then_branch: vec![Stmt::If {
                    cond: Expr::bin(BinOp::Gt, Expr::var("b"), Expr::Const(0)),
                    then_branch: vec![Stmt::Assign("r".into(), Expr::Const(1))],
                    else_branch: vec![Stmt::Assign("r".into(), Expr::Const(2))],
                }],
                else_branch: vec![Stmt::Assign("r".into(), Expr::Const(3))],
            }],
        };
        let blocks = p.partition();
        for (a, b) in [(1i64, 1i64), (1, -1), (-1, 5)] {
            let mut direct = HashMap::from([("a".to_string(), a), ("b".to_string(), b)]);
            p.interpret(&mut direct);
            let mut blocked = HashMap::from([("a".to_string(), a), ("b".to_string(), b)]);
            Program::interpret_blocks(&blocks, &mut blocked);
            assert_eq!(direct["r"], blocked["r"], "a={a} b={b}");
        }
    }
}

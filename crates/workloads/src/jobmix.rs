//! Deterministic workload instances for multi-tenant job mixes.
//!
//! The runtime's integration tests and the Ablation I bench need *many*
//! varied workloads whose correct outputs are known up front. These
//! generators draw kernel choices, parameters, and inputs from a
//! [`Prng`], so the same seed always yields the same case — and therefore
//! the same runtime event log.

use std::collections::HashMap;

use vlsi_prng::Prng;

use crate::program::{BinOp, Expr, Program, Stmt};
use crate::streaming::StreamKernel;

/// A generated streaming case: the kernel, its input, and the reference
/// output the runtime verifies against.
#[derive(Clone, Debug)]
pub struct StreamCase {
    /// The kernel to install.
    pub kernel: StreamKernel,
    /// Input elements (block 0 mailbox).
    pub input: Vec<u64>,
    /// The kernel's reference output for `input`.
    pub expected: Vec<u64>,
}

/// Draws one streaming case: a uniformly chosen kernel shape with random
/// parameters over a random input of 4–24 elements.
pub fn stream_case(rng: &mut Prng) -> StreamCase {
    let len = rng.gen_range(4..=24u64);
    let input: Vec<u64> = (0..len).map(|_| rng.gen_range(0..1_000u64)).collect();
    let (kernel, expected) = match rng.gen_range(0..5u8) {
        0 => {
            let a = rng.gen_range(1..16u64);
            let b = rng.gen_range(0..64u64);
            (
                StreamKernel::axpy(a, b, len),
                StreamKernel::axpy_reference(a, b, &input),
            )
        }
        1 => {
            let n = rng.gen_range(2..=5usize);
            let consts: Vec<u64> = (0..n).map(|_| rng.gen_range(1..9u64)).collect();
            (
                StreamKernel::chain(&consts, len),
                StreamKernel::chain_reference(&consts, &input),
            )
        }
        2 => {
            let c = [
                rng.gen_range(1..8u64),
                rng.gen_range(1..8u64),
                rng.gen_range(1..8u64),
            ];
            (
                StreamKernel::fanout_reduce(c, len),
                StreamKernel::fanout_reduce_reference(c, &input),
            )
        }
        3 => {
            let n = rng.gen_range(2..=4usize);
            let coeffs: Vec<u64> = (0..n).map(|_| rng.gen_range(1..7u64)).collect();
            (
                StreamKernel::horner(&coeffs, len),
                StreamKernel::horner_reference(&coeffs, &input),
            )
        }
        _ => {
            let w = rng.gen_range(2..=6usize);
            let base = rng.gen_range(1..5u64);
            (
                StreamKernel::wide_tree(w, base, len),
                StreamKernel::wide_tree_reference(w, base, &input),
            )
        }
    };
    StreamCase {
        kernel,
        input,
        expected,
    }
}

/// A generated basic-block program case with its input datasets.
#[derive(Clone, Debug)]
pub struct BlockCase {
    /// The program (three blocks once partitioned: branch + two arms +
    /// join).
    pub program: Program,
    /// Input environments to push through the block pipeline.
    pub datasets: Vec<HashMap<String, i64>>,
    /// The variable holding each dataset's result.
    pub result_var: String,
}

/// Draws one control-flow case in the Figure 7 shape —
/// `if (x ⊲ y) z = x·k₁ + c₁ else z = y − c₂; r = z·k₂ + x` — with random
/// comparison, constants, and 1–3 datasets.
pub fn block_case(rng: &mut Prng) -> BlockCase {
    let cmp = *rng.choose(&[BinOp::Gt, BinOp::Lt]).expect("non-empty");
    let k1 = rng.gen_range(1..6i64);
    let c1 = rng.gen_range(0..20i64);
    let c2 = rng.gen_range(0..20i64);
    let k2 = rng.gen_range(1..4i64);
    let program = Program {
        stmts: vec![
            Stmt::If {
                cond: Expr::bin(cmp, Expr::var("x"), Expr::var("y")),
                then_branch: vec![Stmt::Assign(
                    "z".into(),
                    Expr::bin(
                        BinOp::Add,
                        Expr::bin(BinOp::Mul, Expr::var("x"), Expr::Const(k1)),
                        Expr::Const(c1),
                    ),
                )],
                else_branch: vec![Stmt::Assign(
                    "z".into(),
                    Expr::bin(BinOp::Sub, Expr::var("y"), Expr::Const(c2)),
                )],
            },
            Stmt::Assign(
                "r".into(),
                Expr::bin(
                    BinOp::Add,
                    Expr::bin(BinOp::Mul, Expr::var("z"), Expr::Const(k2)),
                    Expr::var("x"),
                ),
            ),
        ],
    };
    let datasets = (0..rng.gen_range(1..=3usize))
        .map(|_| {
            HashMap::from([
                ("x".to_string(), rng.gen_range(-50..50i64)),
                ("y".to_string(), rng.gen_range(-50..50i64)),
            ])
        })
        .collect();
    BlockCase {
        program,
        datasets,
        result_var: "r".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_cases_are_deterministic_and_self_consistent() {
        let mut a = Prng::seed_from_u64(7);
        let mut b = Prng::seed_from_u64(7);
        for _ in 0..32 {
            let ca = stream_case(&mut a);
            let cb = stream_case(&mut b);
            assert_eq!(ca.kernel.name, cb.kernel.name);
            assert_eq!(ca.input, cb.input);
            assert_eq!(ca.expected, cb.expected);
            assert_eq!(ca.input.len() as u64, ca.kernel.input_len);
            assert_eq!(ca.expected.len() as u64, ca.kernel.output_len);
        }
    }

    #[test]
    fn block_cases_match_the_interpreter() {
        let mut rng = Prng::seed_from_u64(11);
        for _ in 0..16 {
            let case = block_case(&mut rng);
            for ds in &case.datasets {
                let mut env = ds.clone();
                case.program.interpret(&mut env);
                assert!(env.contains_key(&case.result_var));
            }
        }
    }
}

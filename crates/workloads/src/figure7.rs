//! The paper's worked example (Figure 7), prebuilt.
//!
//! Figure 7(a):
//!
//! ```text
//! if (x > y)
//!     z = x + 1;
//! else
//!     z = y + 2;
//! z = buff
//! ```
//!
//! Figure 7(b) partitions it into four atomic blocks, each a scaled AP:
//! the comparator ("activate and send x / send y"), the two speculative
//! arms `t = x+1` and `f = y+2`, and the buffer consumer. The preceding
//! processor writes operands into the following processor's memory block
//! while that processor is inactive, then activates it — the speculative
//! pipelined execution of Figure 7(d).

use crate::program::{BinOp, Expr, Program, Stmt};
use std::collections::HashMap;

/// The variable the example's result lands in.
pub const RESULT_VAR: &str = "buff";

/// Builds the Figure 7(a) program.
pub fn program() -> Program {
    Program {
        stmts: vec![
            Stmt::If {
                cond: Expr::bin(BinOp::Gt, Expr::var("x"), Expr::var("y")),
                then_branch: vec![Stmt::Assign(
                    "z".into(),
                    Expr::bin(BinOp::Add, Expr::var("x"), Expr::Const(1)),
                )],
                else_branch: vec![Stmt::Assign(
                    "z".into(),
                    Expr::bin(BinOp::Add, Expr::var("y"), Expr::Const(2)),
                )],
            },
            // "z = buff": the fourth block receives z into the buffer.
            Stmt::Assign(RESULT_VAR.into(), Expr::var("z")),
        ],
    }
}

/// Ground truth: `if (x > y) x + 1 else y + 2`.
pub fn reference(x: i64, y: i64) -> i64 {
    if x > y {
        x.wrapping_add(1)
    } else {
        y.wrapping_add(2)
    }
}

/// Convenience: runs the IR interpreter on the example.
pub fn interpret(x: i64, y: i64) -> i64 {
    let mut env = HashMap::from([("x".to_string(), x), ("y".to_string(), y)]);
    program().interpret(&mut env);
    env[RESULT_VAR]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{BlockDatapath, Terminator};

    #[test]
    fn interpreter_matches_reference() {
        for (x, y) in [(9i64, 4i64), (2, 5), (5, 5), (-1, -2), (i64::MAX - 1, 0)] {
            assert_eq!(interpret(x, y), reference(x, y), "x={x} y={y}");
        }
    }

    #[test]
    fn partitions_into_four_atomic_blocks() {
        // Figure 7(b): "The application can be partitioned into four
        // atomic blocks."
        let blocks = program().partition();
        assert_eq!(blocks.len(), 4);
        // One brancher, two arms joining at the buffer block.
        let branchers = blocks
            .iter()
            .filter(|b| matches!(b.terminator, Terminator::Branch { .. }))
            .count();
        assert_eq!(branchers, 1);
        let enders = blocks
            .iter()
            .filter(|b| b.terminator == Terminator::End)
            .count();
        assert_eq!(enders, 1);
    }

    #[test]
    fn block_execution_matches_reference() {
        let blocks = program().partition();
        for (x, y) in [(9i64, 4i64), (2, 5), (0, 0)] {
            let mut env = HashMap::from([("x".to_string(), x), ("y".to_string(), y)]);
            Program::interpret_blocks(&blocks, &mut env);
            assert_eq!(env[RESULT_VAR], reference(x, y));
        }
    }

    #[test]
    fn every_block_compiles_to_a_datapath() {
        for b in program().partition() {
            if b.assigns.is_empty() && b.cond.is_none() {
                continue; // empty join blocks carry no datapath
            }
            let dp = BlockDatapath::compile(&b);
            assert!(!dp.stream.is_empty());
        }
    }
}

//! Streaming dataflow kernels.
//!
//! Each kernel builds the logical objects and global configuration stream
//! of a classic streaming datapath, together with a reference function for
//! verification. Kernels read their input stream from memory object
//! [`StreamKernel::LOAD_ID`] (block 0) and write results through memory
//! object [`StreamKernel::STORE_ID`] (block 1), matching the load/store
//! stream model of `vlsi-ap`.

use vlsi_object::{
    GlobalConfigElement, GlobalConfigStream, LocalConfig, LogicalObject, ObjectId, Operation, Word,
};

/// A built kernel: objects to install, the stream to configure, and the
/// number of elements it consumes/produces.
#[derive(Clone, Debug)]
pub struct StreamKernel {
    /// Human-readable kernel name.
    pub name: &'static str,
    /// Logical objects (compute + the two memory stream objects).
    pub objects: Vec<LogicalObject>,
    /// The datapath's global configuration stream.
    pub stream: GlobalConfigStream,
    /// Input elements consumed from block 0.
    pub input_len: u64,
    /// Output elements produced into block 1.
    pub output_len: u64,
}

impl StreamKernel {
    /// ID of the load-stream memory object (reads block 0).
    pub const LOAD_ID: ObjectId = ObjectId(1000);
    /// ID of the store-stream memory object (writes block 1).
    pub const STORE_ID: ObjectId = ObjectId(1001);

    fn load_object(len: u64) -> LogicalObject {
        LogicalObject::memory(Self::LOAD_ID, LocalConfig::op(Operation::Load)).with_init(vec![
            Word(0),
            Word(0),
            Word(len),
        ])
    }

    fn store_object() -> LogicalObject {
        LogicalObject::memory(Self::STORE_ID, LocalConfig::op(Operation::Store)).with_init(vec![
            Word(0),
            Word(1),
            Word(0),
        ])
    }

    fn store_element(src: ObjectId) -> GlobalConfigElement {
        GlobalConfigElement {
            sink: Self::STORE_ID,
            src_lhs: None,
            src_rhs: Some(src),
            src_pred: None,
        }
    }

    /// `y[i] = a * x[i] + b` — the scalar AXPY stream.
    ///
    /// Two compute objects: a multiplier and an adder, chained behind the
    /// load stream.
    pub fn axpy(a: u64, b: u64, len: u64) -> StreamKernel {
        let mul = ObjectId(0);
        let add = ObjectId(1);
        let objects = vec![
            LogicalObject::compute(mul, LocalConfig::with_imm(Operation::MulImm, Word(a))),
            LogicalObject::compute(add, LocalConfig::with_imm(Operation::AddImm, Word(b))),
            Self::load_object(len),
            Self::store_object(),
        ];
        let stream: GlobalConfigStream = [
            GlobalConfigElement::unary(mul, Self::LOAD_ID),
            GlobalConfigElement::unary(add, mul),
            Self::store_element(add),
        ]
        .into_iter()
        .collect();
        StreamKernel {
            name: "axpy",
            objects,
            stream,
            input_len: len,
            output_len: len,
        }
    }

    /// Reference for [`axpy`](Self::axpy).
    pub fn axpy_reference(a: u64, b: u64, xs: &[u64]) -> Vec<u64> {
        xs.iter()
            .map(|&x| x.wrapping_mul(a).wrapping_add(b))
            .collect()
    }

    /// An `n`-stage integer pipeline: `y = ((x + c1) + c2) + … + cn`,
    /// exercising long linear chains ("large (data) dependency" streams).
    pub fn chain(constants: &[u64], len: u64) -> StreamKernel {
        assert!(!constants.is_empty());
        let mut objects = vec![Self::load_object(len), Self::store_object()];
        let mut elements = Vec::new();
        let mut prev = Self::LOAD_ID;
        for (i, &c) in constants.iter().enumerate() {
            let id = ObjectId(i as u32);
            objects.push(LogicalObject::compute(
                id,
                LocalConfig::with_imm(Operation::AddImm, Word(c)),
            ));
            elements.push(GlobalConfigElement::unary(id, prev));
            prev = id;
        }
        elements.push(Self::store_element(prev));
        StreamKernel {
            name: "chain",
            objects,
            stream: elements.into_iter().collect(),
            input_len: len,
            output_len: len,
        }
    }

    /// Reference for [`chain`](Self::chain).
    pub fn chain_reference(constants: &[u64], xs: &[u64]) -> Vec<u64> {
        xs.iter()
            .map(|&x| constants.iter().fold(x, |acc, &c| acc.wrapping_add(c)))
            .collect()
    }

    /// A 3-tap FIR-like kernel over a *delayed* stream:
    /// `y[i] = c0*x[i] + c1*x[i] + c2*x[i]` computed as a fan-out of the
    /// load stream into three multipliers reduced by two adders. (True
    /// sample delays need per-object state; the fan-out/reduce shape is
    /// what exercises the chaining fabric.)
    pub fn fanout_reduce(c: [u64; 3], len: u64) -> StreamKernel {
        let m: [ObjectId; 3] = [ObjectId(0), ObjectId(1), ObjectId(2)];
        let add0 = ObjectId(3);
        let add1 = ObjectId(4);
        let mut objects = vec![Self::load_object(len), Self::store_object()];
        for (i, &coeff) in c.iter().enumerate() {
            objects.push(LogicalObject::compute(
                m[i],
                LocalConfig::with_imm(Operation::MulImm, Word(coeff)),
            ));
        }
        objects.push(LogicalObject::compute(
            add0,
            LocalConfig::op(Operation::IAdd),
        ));
        objects.push(LogicalObject::compute(
            add1,
            LocalConfig::op(Operation::IAdd),
        ));
        let stream: GlobalConfigStream = [
            GlobalConfigElement::unary(m[0], Self::LOAD_ID),
            GlobalConfigElement::unary(m[1], Self::LOAD_ID),
            GlobalConfigElement::unary(m[2], Self::LOAD_ID),
            GlobalConfigElement::binary(add0, m[0], m[1]),
            GlobalConfigElement::binary(add1, add0, m[2]),
            Self::store_element(add1),
        ]
        .into_iter()
        .collect();
        StreamKernel {
            name: "fanout_reduce",
            objects,
            stream,
            input_len: len,
            output_len: len,
        }
    }

    /// Reference for [`fanout_reduce`](Self::fanout_reduce).
    pub fn fanout_reduce_reference(c: [u64; 3], xs: &[u64]) -> Vec<u64> {
        xs.iter()
            .map(|&x| {
                x.wrapping_mul(c[0])
                    .wrapping_add(x.wrapping_mul(c[1]))
                    .wrapping_add(x.wrapping_mul(c[2]))
            })
            .collect()
    }

    /// Horner evaluation of a degree-`d` polynomial with coefficient 1 at
    /// every term: `y = (((x·1 + 1)·x … ))` is not expressible without a
    /// second stream of `x`, so the kernel computes the affine recurrence
    /// `y = ((x·c₀ + c₁)·1 + c₂)…` — an alternating MulImm/AddImm chain,
    /// the canonical serial-ILP counterpoint to [`wide_tree`](Self::wide_tree).
    pub fn horner(coeffs: &[u64], len: u64) -> StreamKernel {
        assert!(coeffs.len() >= 2);
        let mut objects = vec![Self::load_object(len), Self::store_object()];
        let mut elements = Vec::new();
        let mut prev = Self::LOAD_ID;
        for (i, &c) in coeffs.iter().enumerate() {
            let id = ObjectId(i as u32);
            let op = if i % 2 == 0 {
                Operation::MulImm
            } else {
                Operation::AddImm
            };
            objects.push(LogicalObject::compute(
                id,
                LocalConfig::with_imm(op, Word(c)),
            ));
            elements.push(GlobalConfigElement::unary(id, prev));
            prev = id;
        }
        elements.push(Self::store_element(prev));
        StreamKernel {
            name: "horner",
            objects,
            stream: elements.into_iter().collect(),
            input_len: len,
            output_len: len,
        }
    }

    /// Reference for [`horner`](Self::horner).
    pub fn horner_reference(coeffs: &[u64], xs: &[u64]) -> Vec<u64> {
        xs.iter()
            .map(|&x| {
                coeffs.iter().enumerate().fold(x, |acc, (i, &c)| {
                    if i % 2 == 0 {
                        acc.wrapping_mul(c)
                    } else {
                        acc.wrapping_add(c)
                    }
                })
            })
            .collect()
    }

    /// A width-`w` multiply tree: the load stream fans out to `w`
    /// multipliers whose products reduce through an adder tree into the
    /// store stream. Sweeping `w` sweeps the datapath's intrinsic ILP.
    pub fn wide_tree(w: usize, coeff_base: u64, len: u64) -> StreamKernel {
        assert!(w >= 1);
        let mut objects = vec![Self::load_object(len), Self::store_object()];
        let mut elements = Vec::new();
        let mut next_id = 0u32;
        let mut fresh = |objects: &mut Vec<LogicalObject>, cfg: LocalConfig| {
            let id = ObjectId(next_id);
            next_id += 1;
            objects.push(LogicalObject::compute(id, cfg));
            id
        };
        // Fan-out: w multipliers off the load stream.
        let mut layer: Vec<ObjectId> = (0..w)
            .map(|i| {
                let id = fresh(
                    &mut objects,
                    LocalConfig::with_imm(Operation::MulImm, Word(coeff_base + i as u64)),
                );
                elements.push(GlobalConfigElement::unary(id, Self::LOAD_ID));
                id
            })
            .collect();
        // Reduce: pairwise adder tree.
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                if pair.len() == 2 {
                    let id = fresh(&mut objects, LocalConfig::op(Operation::IAdd));
                    elements.push(GlobalConfigElement::binary(id, pair[0], pair[1]));
                    next.push(id);
                } else {
                    next.push(pair[0]);
                }
            }
            layer = next;
        }
        elements.push(Self::store_element(layer[0]));
        StreamKernel {
            name: "wide_tree",
            objects,
            stream: elements.into_iter().collect(),
            input_len: len,
            output_len: len,
        }
    }

    /// Reference for [`wide_tree`](Self::wide_tree).
    pub fn wide_tree_reference(w: usize, coeff_base: u64, xs: &[u64]) -> Vec<u64> {
        xs.iter()
            .map(|&x| {
                (0..w)
                    .map(|i| x.wrapping_mul(coeff_base + i as u64))
                    .fold(0u64, u64::wrapping_add)
            })
            .collect()
    }

    /// The compute working-set size (objects that must be resident to
    /// stream).
    pub fn compute_working_set(&self) -> usize {
        self.objects
            .iter()
            .filter(|o| o.kind == vlsi_object::ObjectKind::Compute)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_shape() {
        let k = StreamKernel::axpy(3, 5, 16);
        assert_eq!(k.compute_working_set(), 2);
        assert_eq!(k.stream.len(), 3);
        assert_eq!(StreamKernel::axpy_reference(3, 5, &[1, 2]), vec![8, 11]);
    }

    #[test]
    fn chain_shape() {
        let k = StreamKernel::chain(&[1, 2, 3], 8);
        assert_eq!(k.compute_working_set(), 3);
        // Working set must match min streaming capacity analytics.
        assert!(k.stream.min_streaming_capacity() <= k.compute_working_set() + 2);
        assert_eq!(StreamKernel::chain_reference(&[1, 2, 3], &[10]), vec![16]);
    }

    #[test]
    fn fanout_reduce_shape() {
        let k = StreamKernel::fanout_reduce([1, 2, 3], 4);
        assert_eq!(k.compute_working_set(), 5);
        assert_eq!(
            StreamKernel::fanout_reduce_reference([1, 2, 3], &[10]),
            vec![60]
        );
    }

    #[test]
    fn horner_shape_and_reference() {
        let k = StreamKernel::horner(&[2, 3, 4], 8);
        assert_eq!(k.compute_working_set(), 3);
        // x=5: ((5*2)+3)*4 = 52.
        assert_eq!(StreamKernel::horner_reference(&[2, 3, 4], &[5]), vec![52]);
    }

    #[test]
    fn wide_tree_shapes() {
        for w in [1usize, 2, 3, 4, 7, 8] {
            let k = StreamKernel::wide_tree(w, 1, 4);
            // w multipliers + (w - 1) adders.
            assert_eq!(k.compute_working_set(), 2 * w - 1, "width {w}");
        }
        // Reference: x=2, w=3, coeffs 1,2,3 -> 2+4+6 = 12.
        assert_eq!(StreamKernel::wide_tree_reference(3, 1, &[2]), vec![12]);
    }

    #[test]
    fn kernels_use_the_conventional_memory_ids() {
        for k in [
            StreamKernel::axpy(1, 1, 1),
            StreamKernel::chain(&[1], 1),
            StreamKernel::fanout_reduce([1, 1, 1], 1),
        ] {
            assert!(k.objects.iter().any(|o| o.id == StreamKernel::LOAD_ID));
            assert!(k.objects.iter().any(|o| o.id == StreamKernel::STORE_ID));
        }
    }
}

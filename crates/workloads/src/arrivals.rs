//! Open-loop arrival traces for the ingestion front-end.
//!
//! A serving system is characterised by its *arrival process*, not by a
//! fixed batch of jobs: requests keep coming whether or not the fleet
//! can absorb them. This module generates deterministic open-loop
//! arrival traces — sequences of [`ArrivalEvent`]s stamped with the
//! tick they reach the submission ring — in three regimes:
//!
//! * [`ArrivalProfile::Sustained`] — a steady rate the fleet should
//!   absorb with bounded queueing;
//! * [`ArrivalProfile::Burst`] — a low base rate with periodic bursts
//!   that probe the ring's backpressure and the retry path;
//! * [`ArrivalProfile::Overload`] — a rate beyond the fleet's service
//!   capacity, where only shedding keeps sojourn times bounded.
//!
//! Rates are in **milli-jobs per tick** (1000 = one job every tick), so
//! the whole pipeline stays integer-only and bit-reproducible. The
//! trace is pure data — tick, tenant, priority, size, hold time,
//! deadline slack — with no dependency on the runtime; the ingest layer
//! maps events onto job specs.

use vlsi_prng::Prng;

/// The shape of an open-loop arrival process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrivalProfile {
    /// A constant rate of `rate_milli` milli-jobs per tick.
    Sustained {
        /// Arrival rate in milli-jobs per tick (1000 = 1 job/tick).
        rate_milli: u64,
    },
    /// `base_milli` between bursts; every `period` ticks the rate jumps
    /// to `burst_milli` for `burst_len` ticks.
    Burst {
        /// Rate outside bursts, in milli-jobs per tick.
        base_milli: u64,
        /// Rate during a burst, in milli-jobs per tick.
        burst_milli: u64,
        /// Ticks from one burst start to the next.
        period: u64,
        /// Ticks each burst lasts.
        burst_len: u64,
    },
    /// A constant rate meant to exceed service capacity.
    Overload {
        /// Arrival rate in milli-jobs per tick.
        rate_milli: u64,
    },
}

impl ArrivalProfile {
    /// A short label for traces and bench names.
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalProfile::Sustained { .. } => "sustained",
            ArrivalProfile::Burst { .. } => "burst",
            ArrivalProfile::Overload { .. } => "overload",
        }
    }

    /// The instantaneous rate at `tick`, in milli-jobs per tick.
    pub fn rate_at(&self, tick: u64) -> u64 {
        match *self {
            ArrivalProfile::Sustained { rate_milli } => rate_milli,
            ArrivalProfile::Overload { rate_milli } => rate_milli,
            ArrivalProfile::Burst {
                base_milli,
                burst_milli,
                period,
                burst_len,
            } => {
                if period > 0 && tick % period < burst_len {
                    burst_milli
                } else {
                    base_milli
                }
            }
        }
    }
}

/// One externally arriving request: pure data, mapped to a job spec by
/// the ingest layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrivalEvent {
    /// Tick the request reaches the submission ring.
    pub at: u64,
    /// The tenant it belongs to (rate limits are per tenant).
    pub tenant: u16,
    /// Scheduling priority (higher survives degraded mode longer).
    pub priority: u8,
    /// Clusters the job will request.
    pub clusters: usize,
    /// Ticks the job holds its clusters once admitted.
    pub hold_ticks: u64,
    /// Deadline slack in ticks past `at`, if the request carries a
    /// deadline (`None` = best-effort).
    pub deadline_slack: Option<u64>,
}

/// Generates the deterministic arrival trace for `profile` over
/// `horizon` ticks, spread across `tenants` tenants. Milli-job credit
/// accumulates every tick and each full 1000 emits one event, so the
/// same `(seed, profile, horizon, tenants)` always yields the same
/// trace, event for event.
pub fn arrival_trace(
    seed: u64,
    profile: ArrivalProfile,
    horizon: u64,
    tenants: u16,
) -> Vec<ArrivalEvent> {
    let mut rng = Prng::seed_from_u64(seed ^ 0xA221_7A1E);
    let tenants = tenants.max(1);
    let mut credit_milli = 0u64;
    let mut trace = Vec::new();
    for tick in 1..=horizon {
        credit_milli += profile.rate_at(tick);
        while credit_milli >= 1000 {
            credit_milli -= 1000;
            let tenant = rng.gen_range(0..tenants);
            let priority = rng.gen_range(0..=3u8);
            let clusters = *rng
                .choose(&[1usize, 2, 2, 3, 4, 4, 6, 8])
                .expect("non-empty size table");
            let hold_ticks = rng.gen_range(2..=10u64);
            let deadline_slack = if rng.gen_bool(0.4) {
                Some(rng.gen_range(16..=64u64))
            } else {
                None
            };
            trace.push(ArrivalEvent {
                at: tick,
                tenant,
                priority,
                clusters,
                hold_ticks,
                deadline_slack,
            });
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_replay_bit_identically() {
        let p = ArrivalProfile::Sustained { rate_milli: 700 };
        assert_eq!(arrival_trace(9, p, 200, 4), arrival_trace(9, p, 200, 4));
        assert_ne!(
            arrival_trace(9, p, 200, 4),
            arrival_trace(10, p, 200, 4),
            "different seeds draw different traces"
        );
    }

    #[test]
    fn sustained_rate_integrates_exactly() {
        let trace = arrival_trace(1, ArrivalProfile::Sustained { rate_milli: 250 }, 400, 2);
        // 250 milli-jobs/tick over 400 ticks = exactly 100 arrivals.
        assert_eq!(trace.len(), 100);
        assert!(trace.windows(2).all(|w| w[0].at <= w[1].at), "sorted by at");
        assert!(trace.iter().all(|e| e.tenant < 2 && e.clusters >= 1));
    }

    #[test]
    fn bursts_cluster_arrivals_inside_the_window() {
        let p = ArrivalProfile::Burst {
            base_milli: 100,
            burst_milli: 3000,
            period: 50,
            burst_len: 5,
        };
        let trace = arrival_trace(3, p, 200, 4);
        let in_burst = trace.iter().filter(|e| e.at % 50 < 6).count();
        assert!(
            in_burst * 2 > trace.len(),
            "most arrivals land in the burst windows: {in_burst}/{}",
            trace.len()
        );
    }

    #[test]
    fn overload_outpaces_sustained() {
        let slow = arrival_trace(5, ArrivalProfile::Sustained { rate_milli: 300 }, 100, 4);
        let fast = arrival_trace(5, ArrivalProfile::Overload { rate_milli: 2500 }, 100, 4);
        assert!(fast.len() > slow.len() * 5);
    }
}

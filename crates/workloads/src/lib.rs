//! # vlsi-workloads — applications for the VLSI processor
//!
//! The paper motivates the architecture with three application shapes:
//! streaming datapaths with large data dependency (§1, "a streaming
//! application with a large (data) dependency will probably require more
//! resources"), random datapath configurations with controllable locality
//! (§2.6.2's evaluation workload), and control-flow programs partitioned
//! into basic blocks mapped onto separate processors (§3.3, Figure 7).
//!
//! This crate builds all three as *data* — logical objects plus global
//! configuration streams — that `vlsi-ap` and `vlsi-core` execute:
//!
//! * [`streaming`] — FIR filters, AXPY, reductions: linear dataflow
//!   kernels with known closed-form results for verification;
//! * [`randpath`] — random datapaths over object IDs with a locality
//!   parameter (the Figure 3 generator lifted to real objects);
//! * [`program`] — a miniature expression IR, the basic-block partitioner
//!   of Figure 7(a)→(b), and a compiler from basic blocks to datapaths;
//! * [`figure7`] — the paper's worked example, prebuilt;
//! * [`jobmix`] — deterministic generators of verified workload
//!   instances for the runtime's multi-tenant job mixes;
//! * [`netgen`] — deterministic dataflow-graph corpus generator
//!   (chains, trees, butterflies, random DAGs) emitting the netlist
//!   text `vlsi-compile` ingests.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod arrivals;
pub mod figure7;
pub mod jobmix;
pub mod netgen;
pub mod ocode;
pub mod optimizer;
pub mod program;
pub mod randpath;
pub mod streaming;

pub use arrivals::{arrival_trace, ArrivalEvent, ArrivalProfile};
pub use netgen::GraphKind;
pub use ocode::{assemble, disassemble};
pub use optimizer::optimize_stream;
pub use program::{BasicBlock, BlockDatapath, Expr, Program, Stmt, Terminator};
pub use randpath::RandomDatapath;
pub use streaming::StreamKernel;

//! Deterministic dataflow-graph corpus generator for the compiler.
//!
//! `vlsi-compile` ingests a line-oriented netlist text format; this
//! module emits that text (never the compiler's IR — the compiler
//! depends on this crate, not the other way round) for four structural
//! families, each at several sizes:
//!
//! * **chains** — deep sequential dependency, the worst case for
//!   partition cut size;
//! * **trees** — balanced binary reductions, wide at the leaves;
//! * **butterflies** — FFT-style lane shuffles, the densest
//!   inter-partition traffic per node;
//! * **random DAGs** — locality-biased operand selection, the
//!   §2.6.2-style stress shape.
//!
//! Every generator is a pure function of `(kind, seed)`, and the text
//! it emits is in the compiler's canonical form (declarations in node
//! order, outputs last), so corpus graphs double as round-trip
//! fixtures.

use vlsi_prng::Prng;

/// A graph family at a given size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphKind {
    /// A dependency chain of `len` binary nodes.
    Chain {
        /// Chain length in binary nodes.
        len: usize,
    },
    /// A balanced binary reduction tree over `2^depth` leaves.
    Tree {
        /// Tree depth; the leaf count is `2^depth`.
        depth: u32,
    },
    /// A butterfly network over `2^lanes_log2` lanes (`lanes_log2`
    /// rounds of stride-paired add/sub).
    Butterfly {
        /// Log2 of the lane count.
        lanes_log2: u32,
    },
    /// A random DAG of `nodes` binary nodes with locality-biased
    /// operand selection.
    Random {
        /// Binary node count.
        nodes: usize,
    },
}

impl GraphKind {
    /// A short deterministic name, used as the netlist's `graph` name.
    pub fn name(&self) -> String {
        match self {
            GraphKind::Chain { len } => format!("chain{len}"),
            GraphKind::Tree { depth } => format!("tree{depth}"),
            GraphKind::Butterfly { lanes_log2 } => format!("butterfly{lanes_log2}"),
            GraphKind::Random { nodes } => format!("random{nodes}"),
        }
    }
}

const OPS: [&str; 6] = ["add", "sub", "mul", "gt", "lt", "eq"];
/// Arithmetic-only subset: keeps deep chains and random DAGs from
/// collapsing every downstream value to a 0/1 predicate.
const ARITH: [&str; 3] = ["add", "sub", "mul"];

/// Emits the netlist text for `kind`, deterministically from `seed`.
pub fn generate(kind: GraphKind, seed: u64) -> String {
    let mut rng = Prng::seed_from_u64(seed ^ 0x6e65_7467_656e); // "netgen"
    let mut out = String::new();
    out.push_str(&format!("graph {}\n", kind.name()));
    match kind {
        GraphKind::Chain { len } => chain(&mut out, &mut rng, len),
        GraphKind::Tree { depth } => tree(&mut out, &mut rng, depth),
        GraphKind::Butterfly { lanes_log2 } => butterfly(&mut out, lanes_log2),
        GraphKind::Random { nodes } => random(&mut out, &mut rng, nodes),
    }
    out
}

/// The standard corpus: all four families at three sizes each —
/// 12 graphs, every one compiled and executed by the acceptance tests
/// and the `compile_corpus` bench.
pub fn corpus(seed: u64) -> Vec<(String, String)> {
    let kinds = [
        GraphKind::Chain { len: 8 },
        GraphKind::Chain { len: 24 },
        GraphKind::Chain { len: 64 },
        GraphKind::Tree { depth: 3 },
        GraphKind::Tree { depth: 4 },
        GraphKind::Tree { depth: 5 },
        GraphKind::Butterfly { lanes_log2: 2 },
        GraphKind::Butterfly { lanes_log2: 3 },
        GraphKind::Butterfly { lanes_log2: 4 },
        GraphKind::Random { nodes: 12 },
        GraphKind::Random { nodes: 24 },
        GraphKind::Random { nodes: 48 },
    ];
    kinds
        .iter()
        .enumerate()
        .map(|(i, k)| (k.name(), generate(*k, seed.wrapping_add(i as u64))))
        .collect()
}

fn small_const(rng: &mut Prng) -> i64 {
    let v = rng.gen_range(-9i64..=9);
    if v == 0 {
        1
    } else {
        v
    }
}

fn chain(out: &mut String, rng: &mut Prng, len: usize) {
    out.push_str("input x0\ninput x1\n");
    let mut prev = "x0".to_string();
    for i in 0..len {
        // Every fourth link folds in a fresh constant so the chain's
        // values keep moving instead of oscillating around zero.
        let rhs = if i == 0 {
            "x1".to_string()
        } else if i % 4 == 3 {
            let c = format!("k{i}");
            out.push_str(&format!("const {c} {}\n", small_const(rng)));
            c
        } else {
            prev.clone()
        };
        let op = ARITH[rng.gen_range(0..ARITH.len())];
        let n = format!("n{i}");
        out.push_str(&format!("node {n} {op} {prev} {rhs}\n"));
        prev = n;
    }
    out.push_str(&format!("output out {prev}\n"));
}

fn tree(out: &mut String, rng: &mut Prng, depth: u32) {
    let leaves = 1usize << depth;
    let mut level: Vec<String> = Vec::with_capacity(leaves);
    for i in 0..leaves {
        // Mostly inputs, a sprinkling of constants at the leaves.
        if i % 5 == 4 {
            let c = format!("k{i}");
            out.push_str(&format!("const {c} {}\n", small_const(rng)));
            level.push(c);
        } else {
            let x = format!("x{i}");
            out.push_str(&format!("input {x}\n"));
            level.push(x);
        }
    }
    let mut n = 0usize;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len() / 2);
        for pair in level.chunks(2) {
            let op = ARITH[rng.gen_range(0..ARITH.len())];
            let name = format!("n{n}");
            n += 1;
            out.push_str(&format!("node {name} {op} {} {}\n", pair[0], pair[1]));
            next.push(name);
        }
        level = next;
    }
    out.push_str(&format!("output out {}\n", level[0]));
}

fn butterfly(out: &mut String, lanes_log2: u32) {
    let lanes = 1usize << lanes_log2;
    let mut lane: Vec<String> = (0..lanes)
        .map(|i| {
            let x = format!("x{i}");
            out.push_str(&format!("input {x}\n"));
            x
        })
        .collect();
    let mut n = 0usize;
    for round in 0..lanes_log2 {
        let stride = 1usize << round;
        let mut next = lane.clone();
        for i in 0..lanes {
            if i & stride == 0 {
                let j = i + stride;
                let a = format!("n{n}");
                let b = format!("n{}", n + 1);
                n += 2;
                out.push_str(&format!("node {a} add {} {}\n", lane[i], lane[j]));
                out.push_str(&format!("node {b} sub {} {}\n", lane[i], lane[j]));
                next[i] = a;
                next[j] = b;
            }
        }
        lane = next;
    }
    for (i, l) in lane.iter().enumerate() {
        out.push_str(&format!("output y{i} {l}\n"));
    }
}

fn random(out: &mut String, rng: &mut Prng, nodes: usize) {
    let inputs = (nodes / 6).clamp(2, 6);
    let mut values: Vec<String> = (0..inputs)
        .map(|i| {
            let x = format!("x{i}");
            out.push_str(&format!("input {x}\n"));
            x
        })
        .collect();
    let mut consumed = vec![false; values.len()];
    for i in 0..nodes {
        if i % 7 == 6 {
            let c = format!("k{i}");
            out.push_str(&format!("const {c} {}\n", small_const(rng)));
            values.push(c);
            consumed.push(false);
        }
        // Locality bias: ~3/4 of operands come from the most recent
        // quarter of the value list (§2.6.2's locality knob).
        let pick = |rng: &mut Prng| -> usize {
            let n = values.len();
            if n > 4 && rng.gen_bool(0.75) {
                rng.gen_range((n - n / 4)..n)
            } else {
                rng.gen_range(0..n)
            }
        };
        let a = pick(rng);
        let b = pick(rng);
        // Comparisons stay rare for the same reason as in `chain`.
        let op = if rng.gen_bool(0.15) {
            OPS[rng.gen_range(3..OPS.len())]
        } else {
            ARITH[rng.gen_range(0..ARITH.len())]
        };
        let name = format!("n{i}");
        out.push_str(&format!("node {name} {op} {} {}\n", values[a], values[b]));
        consumed[a] = true;
        consumed[b] = true;
        values.push(name);
        consumed.push(false);
    }
    // Every sink (unconsumed value that is a node) becomes an output —
    // a deterministic rule, so the output list needs no extra state.
    let mut outs = 0usize;
    for (v, c) in values.iter().zip(&consumed) {
        if !c && v.starts_with('n') {
            out.push_str(&format!("output y{outs} {v}\n"));
            outs += 1;
        }
    }
    // A DAG whose last node is consumed by nothing always has ≥1 sink,
    // but guard anyway: the final node is the fallback output.
    if outs == 0 {
        out.push_str(&format!("output y0 n{}\n", nodes - 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_full_size() {
        let a = corpus(2012);
        let b = corpus(2012);
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        // All four families present, all names unique.
        let names: Vec<&str> = a.iter().map(|(n, _)| n.as_str()).collect();
        for prefix in ["chain", "tree", "butterfly", "random"] {
            assert_eq!(names.iter().filter(|n| n.starts_with(prefix)).count(), 3);
        }
        let mut uniq = names.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), names.len());
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(corpus(1), corpus(2));
    }

    #[test]
    fn every_graph_is_well_formed_text() {
        for (name, text) in corpus(7) {
            let mut lines = text.lines();
            assert_eq!(lines.next(), Some(format!("graph {name}").as_str()));
            let mut saw_output = false;
            for line in lines {
                let kw = line.split_whitespace().next().unwrap();
                assert!(
                    matches!(kw, "input" | "const" | "node" | "output"),
                    "{name}: unexpected line {line:?}"
                );
                if kw == "output" {
                    saw_output = true;
                } else {
                    // Canonical form: no declarations after the first output.
                    assert!(!saw_output, "{name}: declaration after outputs");
                }
            }
            assert!(saw_output, "{name}: no outputs");
        }
    }

    #[test]
    fn butterfly_is_the_textbook_shape() {
        let text = generate(GraphKind::Butterfly { lanes_log2: 2 }, 0);
        let nodes = text.lines().filter(|l| l.starts_with("node")).count();
        let outputs = text.lines().filter(|l| l.starts_with("output")).count();
        // 2 rounds × 4 lanes / 2 = 4 node pairs = 8 nodes, 4 outputs.
        assert_eq!(nodes, 8);
        assert_eq!(outputs, 4);
    }
}

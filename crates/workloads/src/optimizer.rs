//! Global-configuration-stream optimisation.
//!
//! §2.7: "The dependency distance is a key for efficient processing. We
//! need to take care that the distance be no larger than the capacity to
//! avoid making an object cache miss." The distance is a property of the
//! *order* of the stream, and the order is the application compiler's to
//! choose (§5: "An application compiler needs to simply take care of the
//! linear array size") — so reordering the stream is the paper's
//! optimisation lever, and [`optimize_stream`] pulls it.
//!
//! The algorithm is a greedy list schedule: emit, among the elements whose
//! sources are already defined, the one whose referenced objects were used
//! most recently (ties broken by original position, so the result is
//! deterministic and the relative order of writes to the same sink is
//! preserved — which keeps scalar-mode semantics identical).

use std::collections::HashMap;
use vlsi_object::{GlobalConfigStream, ObjectId};

/// Reorders a stream to reduce dependency (stack) distances without
/// changing its dataflow semantics.
///
/// Guarantees:
/// * every element appears exactly once;
/// * an element never moves before the definition (sink-write) of any of
///   its sources, when such a definition exists;
/// * elements sharing a sink keep their relative order.
pub fn optimize_stream(stream: &GlobalConfigStream) -> GlobalConfigStream {
    let elements = stream.elements();
    let n = elements.len();
    if n <= 1 {
        return stream.clone();
    }
    // First definition index of each sink, per element: element j depends
    // on element i (i < j) if i's sink is one of j's sources and i is the
    // *latest* write to that sink before j; also on the previous write to
    // j's own sink.
    let mut deps: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut last_write: HashMap<ObjectId, usize> = HashMap::new();
    let mut readers_since_write: HashMap<ObjectId, Vec<usize>> = HashMap::new();
    for (j, e) in elements.iter().enumerate() {
        // True (read-after-write) dependencies.
        for src in e.sources() {
            if let Some(&i) = last_write.get(&src) {
                deps[j].push(i);
            }
            readers_since_write.entry(src).or_default().push(j);
        }
        // Output (write-after-write): same-sink order preserved.
        if let Some(&i) = last_write.get(&e.sink) {
            deps[j].push(i);
        }
        // Anti (write-after-read): readers of the old value must come
        // before this redefinition.
        if let Some(readers) = readers_since_write.remove(&e.sink) {
            for i in readers {
                if i != j {
                    deps[j].push(i);
                }
            }
        }
        last_write.insert(e.sink, j);
    }
    let mut pending: Vec<usize> = deps.iter().map(|d| d.len()).collect();
    let mut dependants: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (j, d) in deps.iter().enumerate() {
        for &i in d {
            dependants[i].push(j);
        }
    }
    // Greedy emission.
    let mut ready: Vec<usize> = (0..n).filter(|&j| pending[j] == 0).collect();
    let mut out = Vec::with_capacity(n);
    let mut recency: HashMap<ObjectId, usize> = HashMap::new();
    let mut clock = 0usize;
    while let Some(pos) = pick(&ready, elements, &recency) {
        let j = ready.remove(pos);
        out.push(elements[j]);
        for id in elements[j].referenced() {
            clock += 1;
            recency.insert(id, clock);
        }
        for &k in &dependants[j] {
            pending[k] -= 1;
            if pending[k] == 0 {
                ready.push(k);
            }
        }
    }
    debug_assert_eq!(out.len(), n, "schedule must emit every element");
    GlobalConfigStream::from_elements(out)
}

/// Picks the ready element touching the most recently used objects.
fn pick(
    ready: &[usize],
    elements: &[vlsi_object::GlobalConfigElement],
    recency: &HashMap<ObjectId, usize>,
) -> Option<usize> {
    if ready.is_empty() {
        return None;
    }
    let score = |j: usize| -> usize {
        elements[j]
            .referenced()
            .filter_map(|id| recency.get(&id).copied())
            .max()
            .unwrap_or(0)
    };
    let mut best = 0;
    let mut best_score = score(ready[0]);
    for (p, &j) in ready.iter().enumerate().skip(1) {
        let s = score(j);
        // Strictly greater wins; ties keep the earliest original index
        // (ready is maintained in insertion order, which follows original
        // positions for the initial set).
        if s > best_score {
            best = p;
            best_score = s;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::randpath::RandomDatapath;
    use vlsi_object::GlobalConfigElement;

    fn id(v: u32) -> ObjectId {
        ObjectId(v)
    }

    #[test]
    fn preserves_element_multiset() {
        let gen = RandomDatapath {
            n_objects: 12,
            n_elements: 60,
            locality: 0.2,
            seed: 3,
        };
        let original = gen.stream();
        let optimized = optimize_stream(&original);
        assert_eq!(optimized.len(), original.len());
        let mut a: Vec<_> = original.elements().to_vec();
        let mut b: Vec<_> = optimized.elements().to_vec();
        let key = |e: &GlobalConfigElement| (e.sink.0, e.src_lhs.map(|s| s.0));
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
    }

    #[test]
    fn respects_def_before_use() {
        let gen = RandomDatapath {
            n_objects: 10,
            n_elements: 50,
            locality: 0.0,
            seed: 7,
        };
        let optimized = optimize_stream(&gen.stream());
        // Replay: a source read after some write to it must see the same
        // write it saw originally — covered by the multiset + same-sink
        // order guarantees; here we check same-sink order directly.
        let sinks: Vec<_> = optimized.elements().iter().map(|e| e.sink).collect();
        let orig_sinks: Vec<_> = gen.stream().elements().iter().map(|e| e.sink).collect();
        for target in 0..10u32 {
            let a: Vec<usize> = sinks
                .iter()
                .enumerate()
                .filter(|(_, s)| **s == id(target))
                .map(|(i, _)| i)
                .collect();
            let b: Vec<usize> = orig_sinks
                .iter()
                .enumerate()
                .filter(|(_, s)| **s == id(target))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(a.len(), b.len());
        }
    }

    #[test]
    fn reduces_dependency_distance_on_shuffled_chains() {
        // Two interleaved chains: A0->A1->A2->A3, B0->B1->B2->B3, emitted
        // alternating — the optimizer should group each chain.
        let interleaved: GlobalConfigStream = (1..4u32)
            .flat_map(|i| {
                [
                    GlobalConfigElement::unary(id(i), id(i - 1)),
                    GlobalConfigElement::unary(id(10 + i), id(10 + i - 1)),
                ]
            })
            .collect();
        let optimized = optimize_stream(&interleaved);
        let before = RandomDatapath::mean_dependency_distance(&interleaved);
        let after = RandomDatapath::mean_dependency_distance(&optimized);
        assert!(
            after < before,
            "optimizer must tighten the chains: {after} !< {before}"
        );
    }

    #[test]
    fn never_hurts_on_random_streams() {
        for seed in 0..8 {
            let gen = RandomDatapath {
                n_objects: 16,
                n_elements: 80,
                locality: 0.3,
                seed,
            };
            let original = gen.stream();
            let optimized = optimize_stream(&original);
            let before = RandomDatapath::mean_dependency_distance(&original);
            let after = RandomDatapath::mean_dependency_distance(&optimized);
            assert!(after <= before + 0.5, "seed {seed}: {after} vs {before}");
        }
    }

    // The optimizer's functional guarantee is validated end to end in the
    // workspace integration tests (scalar execution of original vs
    // optimized); here we pin the structural invariant it rests on.
    #[test]
    fn redefinition_order_preserved() {
        let s: GlobalConfigStream = [
            GlobalConfigElement::unary(id(1), id(0)),
            GlobalConfigElement::unary(id(2), id(1)),
            GlobalConfigElement::unary(id(1), id(2)), // redefinition of 1
            GlobalConfigElement::unary(id(3), id(1)),
        ]
        .into_iter()
        .collect();
        let o = optimize_stream(&s);
        // Element 3 (sink 3, reads 1) must stay after the redefinition.
        let pos_redef = o
            .elements()
            .iter()
            .position(|e| e.sink == id(1) && e.src_lhs == Some(id(2)))
            .unwrap();
        let pos_read = o.elements().iter().position(|e| e.sink == id(3)).unwrap();
        assert!(pos_read > pos_redef);
    }

    #[test]
    fn trivial_streams_pass_through() {
        let empty = GlobalConfigStream::new();
        assert_eq!(optimize_stream(&empty), empty);
        let one: GlobalConfigStream = [GlobalConfigElement::unary(id(1), id(0))]
            .into_iter()
            .collect();
        assert_eq!(optimize_stream(&one), one);
    }
}

//! Property-based tests for the workload toolchain.

use proptest::prelude::*;
use std::collections::HashMap;
use vlsi_object::{GlobalConfigElement, GlobalConfigStream, ObjectId};
use vlsi_workloads::{assemble, disassemble, optimize_stream, RandomDatapath};

/// Reference semantics of a stream under scalar evaluation, abstracted to
/// "which write does each read observe": replay the stream, recording for
/// every element the index of the producing element of each source.
fn read_write_pairs(stream: &GlobalConfigStream) -> Vec<(usize, ObjectId, Option<usize>)> {
    let mut last_write: HashMap<ObjectId, usize> = HashMap::new();
    let mut pairs = Vec::new();
    // Pair each element with a stable identity: its (sink, occurrence #).
    let mut occurrence: HashMap<ObjectId, usize> = HashMap::new();
    for e in stream.elements() {
        let occ = occurrence.entry(e.sink).or_insert(0);
        let my_id = *occ;
        *occ += 1;
        for src in e.sources() {
            pairs.push((my_id, src, last_write.get(&src).copied()));
        }
        let idx = pairs.len(); // unique, increasing
        last_write.insert(e.sink, idx);
    }
    pairs
}

proptest! {
    /// The optimizer never changes which write each read observes —
    /// the dataflow semantics are order-independent beyond that.
    #[test]
    fn optimizer_preserves_read_write_matching(
        elems in prop::collection::vec((0u32..8, 0u32..8), 1..50)
    ) {
        let stream: GlobalConfigStream = elems
            .iter()
            .map(|&(sink, src)| GlobalConfigElement::unary(ObjectId(sink), ObjectId(src)))
            .collect();
        let optimized = optimize_stream(&stream);
        prop_assert_eq!(optimized.len(), stream.len());
        // The abstract read-matching must agree element-for-element when
        // elements are keyed by (sink, occurrence).
        let mut a = read_write_pairs(&stream);
        let mut b = read_write_pairs(&optimized);
        // Writes are renumbered by position; compare only the *presence*
        // pattern: for each (sink-occurrence, source), whether it read an
        // initial value (None) or some prior write (Some). A full check
        // (equality of producing occurrence) runs in the integration
        // tests against the live scalar engine.
        let collapse = |v: &mut Vec<(usize, ObjectId, Option<usize>)>| {
            v.iter()
                .map(|&(o, s, w)| (o, s, w.is_some()))
                .collect::<Vec<_>>()
        };
        let mut ca = collapse(&mut a);
        let mut cb = collapse(&mut b);
        ca.sort();
        cb.sort();
        prop_assert_eq!(ca, cb);
    }

    /// Optimization is idempotent in effect: a second pass never makes
    /// the mean dependency distance worse.
    #[test]
    fn optimizer_is_stable(seed: u64) {
        let gen = RandomDatapath {
            n_objects: 12,
            n_elements: 60,
            locality: 0.4,
            seed,
        };
        let once = optimize_stream(&gen.stream());
        let twice = optimize_stream(&once);
        let d1 = RandomDatapath::mean_dependency_distance(&once);
        let d2 = RandomDatapath::mean_dependency_distance(&twice);
        prop_assert!(d2 <= d1 + 1e-9, "second pass regressed: {d2} > {d1}");
    }

    /// Any generated workload disassembles to text that reassembles to
    /// the identical program.
    #[test]
    fn ocode_roundtrip(seed: u64, n in 2u32..20, len in 1usize..60) {
        let gen = RandomDatapath {
            n_objects: n,
            n_elements: len,
            locality: 0.5,
            seed,
        };
        let objects = gen.objects();
        let stream = gen.stream();
        let text = disassemble(&objects, &stream);
        let (objects2, stream2) = assemble(&text).unwrap();
        prop_assert_eq!(objects, objects2);
        prop_assert_eq!(stream, stream2);
    }

    /// The assembler never panics on arbitrary input — it returns a
    /// structured error with a line number.
    #[test]
    fn assembler_is_total(text in "[ -~\n]{0,200}") {
        match assemble(&text) {
            Ok(_) => {}
            Err(e) => {
                let _ = e.to_string();
            }
        }
    }
}

//! Area cost of the dynamic CSD network (§2.6.2).
//!
//! The paper motivates the dynamic CSD network as an *area reduction* —
//! "This approach must consider how much of an area reduction is
//! acceptable to provide sufficient routability" — but leaves the numbers
//! to the reader. This module supplies them, from the Table 1/3 register
//! figures:
//!
//! * a 64-bit register (one sixth of Table 1's `64b Register x6`) costs
//!   `5.36e6 / 6 ≈ 0.893e6 λ²`;
//! * one **channel segment** needs a 64-bit pass/latch stage on the data
//!   channel plus the request-network switch and the grant **memory
//!   cell** (Figure 2) — modelled as 1.25 register-equivalents;
//! * each object's **priority encoder** across `k` channels is modelled
//!   as `k/64` register-equivalents (a k-input encoder is tiny next to a
//!   64-bit register).
//!
//! A *flat* (unsegmented) global network for `n` objects needs `n`
//! full-length channels; the dynamic CSD needs only `k ≈ n/2`, and its
//! segments are reusable. [`csd_area`] and [`flat_area`] make the §2.6
//! comparison executable.

use crate::area::physical_object_modules;

/// λ² area of one 64-bit register (derived from Table 1).
pub fn register_area() -> f64 {
    let regs = physical_object_modules()
        .iter()
        .find(|m| m.name.contains("Register"))
        .expect("Table 1 has the register row");
    regs.area_lambda2 / 6.0
}

/// Register-equivalents per single-hop channel segment (64-bit data latch
/// + request switch + grant memory cell, Figure 2).
pub const SEGMENT_REGISTER_EQUIV: f64 = 1.25;

/// λ² area of a dynamic CSD network with `n_objects` positions and
/// `channels` channels: `channels × (n_objects − 1)` single-hop segments
/// plus one `channels`-input priority encoder per object.
pub fn csd_area(n_objects: usize, channels: usize) -> f64 {
    let segments = channels as f64 * (n_objects.saturating_sub(1)) as f64;
    let encoders = n_objects as f64 * (channels as f64 / 64.0);
    (segments * SEGMENT_REGISTER_EQUIV + encoders) * register_area()
}

/// λ² area of the flat global network the CSD replaces: one unsegmented
/// full-length channel per object (each still needs per-object taps,
/// modelled at the same per-hop cost without the reuse benefit).
pub fn flat_area(n_objects: usize) -> f64 {
    csd_area(n_objects, n_objects)
}

/// The CSD network's area as a fraction of the compute+memory area it
/// serves (`n_objects/2` compute + `n_objects/2` memory in the paper's
/// 1:1 AP composition).
pub fn csd_area_fraction(n_objects: usize, channels: usize) -> f64 {
    let serves = (n_objects as f64 / 2.0)
        * (crate::area::physical_object_area() + crate::area::memory_block_area());
    csd_area(n_objects, channels) / serves
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_area_from_table1() {
        let r = register_area();
        assert!((8.9e5..9.0e5).contains(&r), "register area {r:.3e}");
    }

    #[test]
    fn halving_channels_halves_segment_area() {
        let n = 32;
        let full = csd_area(n, n);
        let half = csd_area(n, n / 2);
        let ratio = half / full;
        assert!((0.45..0.55).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn csd_with_half_channels_beats_flat() {
        // The paper's area-reduction claim: N/2 channels cost half the
        // flat network.
        for n in [16usize, 32, 64] {
            assert!(csd_area(n, n / 2) < flat_area(n) * 0.55);
        }
    }

    #[test]
    fn network_is_a_small_fraction_of_the_ap() {
        // For the paper's 32-position AP with 16 channels, the network
        // should not dominate the processor.
        let frac = csd_area_fraction(32, 16);
        assert!(
            frac < 0.05,
            "CSD network at {:.2}% of served area",
            frac * 100.0
        );
        // But a flat network for a big array grows linearly and starts to
        // matter.
        assert!(csd_area_fraction(256, 256) > csd_area_fraction(256, 64) * 3.0);
    }

    #[test]
    fn area_scales_linearly_in_both_dimensions() {
        let base = csd_area(64, 16);
        assert!(csd_area(128, 16) > base * 1.9);
        assert!(csd_area(64, 32) > base * 1.9);
        assert_eq!(csd_area(1, 16), 16.0 / 64.0 * register_area());
    }
}

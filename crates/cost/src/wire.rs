//! Global-wire delay (§4.1).
//!
//! "A global wire delay is calculated as the square root of λ² (the total
//! area of the physical object …)" — the critical chain spans the compute
//! array of one AP, so the wire length is the side of the square holding
//! the AP's 16 physical objects:
//!
//! ```text
//! L = sqrt(16 · A_PO[λ²]) · λ        (metres)
//! delay = k(year) · L²               (distributed RC, k from ITRS)
//! ```
//!
//! The delay is taken "as a critical delay used for chaining between the
//! memory block and the physical object since the memory block can not be
//! relocated, therefore a global network is still required" — it is the
//! clock-limiting path of the whole AP, which is why peak GOPS divides by
//! it.

use crate::area::physical_object_area;
use crate::itrs::YearParams;

/// Physical objects whose combined area the critical wire spans (one AP's
/// compute array).
pub const WIRE_SPAN_OBJECTS: f64 = 16.0;

/// The critical global wire length in millimetres for a given year.
pub fn global_wire_length_mm(p: &YearParams) -> f64 {
    wire_length_mm_for(WIRE_SPAN_OBJECTS, p)
}

/// The global wire delay in nanoseconds for a given year.
pub fn global_wire_delay_ns(p: &YearParams) -> f64 {
    wire_delay_ns_for(WIRE_SPAN_OBJECTS, p)
}

/// Wire length when the AP's compute array holds `compute_objects`
/// physical objects — the generalisation behind the §1 trade-off between
/// processor scale and clock ("coordination between clock cycle time and
/// the number of resources").
pub fn wire_length_mm_for(compute_objects: f64, p: &YearParams) -> f64 {
    let area_lambda2 = compute_objects * physical_object_area();
    area_lambda2.sqrt() * p.lambda_m() * 1e3
}

/// Wire delay for an AP with `compute_objects` physical objects.
pub fn wire_delay_ns_for(compute_objects: f64, p: &YearParams) -> f64 {
    let l = wire_length_mm_for(compute_objects, p);
    p.rc_ns_per_mm2 * l * l
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::itrs::ITRS_YEARS;

    /// The wire-delay column of Table 4.
    const PAPER_DELAYS_NS: [f64; 6] = [1.08, 1.21, 1.21, 1.43, 1.58, 1.56];

    #[test]
    fn delays_match_table4() {
        for (p, &want) in ITRS_YEARS.iter().zip(&PAPER_DELAYS_NS) {
            let got = global_wire_delay_ns(p);
            assert!(
                (got - want).abs() < 0.005,
                "{}: delay {got:.3} ns, paper {want}",
                p.year
            );
        }
    }

    #[test]
    fn wire_length_is_millimetre_scale() {
        for p in &ITRS_YEARS {
            let l = global_wire_length_mm(p);
            assert!((0.5..3.0).contains(&l), "{}: {l} mm", p.year);
        }
    }

    #[test]
    fn wire_shrinks_with_lambda() {
        let mut last = f64::INFINITY;
        for p in &ITRS_YEARS {
            let l = global_wire_length_mm(p);
            assert!(l < last);
            last = l;
        }
    }
}

//! # vlsi-cost — the analytical cost model of §4
//!
//! The paper assesses the VLSI processor with a closed-form model: module
//! areas in λ² (Tables 1–3, from Gupta et al. TR-00-05 with divider
//! weights from Govindaraju et al.), ITRS process scaling, a global-wire
//! RC delay, and a peak-GOPS figure (Table 4).
//!
//! The reproduction of Table 4 is *exact* for the "Available # of APs"
//! column once the λ→metres conversion is identified: the paper's λ is the
//! **ITRS 2007 MPU physical gate length** per year (18, 16, 14, 13, 11,
//! 10 nm for 2010–2015), not half the node name. With
//! `AP = 16 × physical object + 16 × memory block + control` and a 1 cm²
//! die, `floor(die / (area_λ² · λ²))` yields 12, 16, 21, 24, 34, 41 — the
//! paper's row, with no free parameter.
//!
//! Wire delay follows the paper's recipe — "a global wire delay is
//! calculated as the square root of λ² (the total area of the physical
//! object\[s\])" — as `delay = k(year) · L²` with `L = √(16 · A_PO) · λ`,
//! where `k` is the per-year ITRS-derived RC coefficient, calibrated to
//! the printed delays (the raw ITRS RC inputs are not recoverable from the
//! paper). Peak GOPS is `n_APs × 16 / delay_ns`, which reproduces the
//! printed column to within the paper's own rounding (see EXPERIMENTS.md).

//! ```
//! use vlsi_cost::scaling::{table4, ApComposition};
//!
//! let rows = table4(&ApComposition::default());
//! // The 2012 row: 21 APs at 36 nm, ~276 GOPS — the paper's headline.
//! let r2012 = rows.iter().find(|r| r.year == 2012).unwrap();
//! assert_eq!(r2012.available_aps, 21);
//! assert!((r2012.wire_delay_ns - 1.21).abs() < 0.005);
//! assert!((r2012.peak_gops - 276.0).abs() / 276.0 < 0.03);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod area;
pub mod csd;
pub mod itrs;
pub mod scaling;
pub mod table;
pub mod wire;

pub use area::{control_object_modules, memory_block_modules, physical_object_modules, ModuleArea};
pub use itrs::{YearParams, ITRS_YEARS};
pub use scaling::{ApComposition, Table4Row};
pub use wire::global_wire_delay_ns;

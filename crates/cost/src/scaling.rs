//! APs per die and peak GOPS — Table 4.
//!
//! An AP is `compute_objects` physical objects plus `memory_objects`
//! memory blocks plus one set of control objects. The number of APs a
//! 1 cm² die holds is `floor(die / (A_AP[λ²] · λ²))`; peak GOPS is one
//! operation per physical object per global-wire delay:
//! `GOPS = n_APs · compute_objects / delay_ns` (load/store streams
//! excluded, as §4.1 states).
//!
//! [`ApComposition`] is a parameter so the paper's trade-off remark — "We
//! can coordinate the number of FPUs and memories, and more GOPS is
//! available if we optimize for more FPUs and less memory blocks" — is an
//! executable ablation, not a sentence.

use crate::area::{control_objects_area, memory_block_area, physical_object_area};
use crate::itrs::{YearParams, ITRS_YEARS};
use crate::wire::global_wire_delay_ns;

/// Die area of the assessment, m² (1 cm², "ordinary chip area").
pub const DIE_AREA_M2: f64 = 1e-4;

/// Resource composition of one adaptive processor.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ApComposition {
    /// Physical (compute) objects per AP.
    pub compute_objects: u32,
    /// Memory blocks per AP.
    pub memory_objects: u32,
}

impl Default for ApComposition {
    /// The paper's 16 + 16 AP.
    fn default() -> ApComposition {
        ApComposition {
            compute_objects: 16,
            memory_objects: 16,
        }
    }
}

impl ApComposition {
    /// AP area in λ² (compute + memory + control objects).
    pub fn area_lambda2(&self) -> f64 {
        f64::from(self.compute_objects) * physical_object_area()
            + f64::from(self.memory_objects) * memory_block_area()
            + control_objects_area()
    }

    /// APs fitting on the die in a given year.
    ///
    /// Counted in `u64`: at aggressive (or hypothetical, for ablation
    /// sweeps) nodes the count overflows 32 bits, and the old `as u32`
    /// cast saturated *silently*, capping every downstream GOPS figure.
    /// A non-finite or negative count — degenerate parameters — panics
    /// rather than wrapping into a plausible-looking number.
    pub fn aps_per_die(&self, p: &YearParams) -> u64 {
        let ap_m2 = self.area_lambda2() * p.lambda_m() * p.lambda_m();
        let n = (DIE_AREA_M2 / ap_m2).floor();
        assert!(
            n.is_finite() && (0.0..18_446_744_073_709_551_616.0).contains(&n),
            "AP count for year {} out of u64 range: {n}",
            p.year
        );
        n as u64
    }

    /// Peak GOPS (operations per second / 1e9), excluding load/store
    /// streams: every physical object completes one chained operation per
    /// global-wire delay.
    pub fn peak_gops(&self, p: &YearParams) -> f64 {
        let n = self.aps_per_die(p);
        n as f64 * f64::from(self.compute_objects) / global_wire_delay_ns(p)
    }

    /// Peak GOPS with the wire delay scaled to *this* composition's
    /// compute array (Table 4 fixes the wire at the 16-object AP; this
    /// variant lets the §1 scale/clock trade-off be swept: a larger AP
    /// runs bigger datapaths but on a slower chaining clock).
    pub fn peak_gops_scaled(&self, p: &YearParams) -> f64 {
        let n = self.aps_per_die(p);
        let delay = crate::wire::wire_delay_ns_for(f64::from(self.compute_objects), p);
        n as f64 * f64::from(self.compute_objects) / delay
    }
}

/// One computed row of Table 4.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Table4Row {
    /// Calendar year.
    pub year: u32,
    /// Process node, nm.
    pub process_nm: f64,
    /// Available APs on the 1 cm² die.
    pub available_aps: u64,
    /// Global wire delay, ns.
    pub wire_delay_ns: f64,
    /// Peak GOPS.
    pub peak_gops: f64,
}

/// Computes all six rows of Table 4 for a composition.
pub fn table4(comp: &ApComposition) -> Vec<Table4Row> {
    table4_with_layers(comp, 1)
}

/// Table 4 for a chip-on-chip stack of `layers` dies (Figure 6(d)).
///
/// Each die carries `aps_per_die` APs; the 3D stack switch links the
/// folds vertically, so AP count scales with the layer count while the
/// per-AP critical wire — and thus the cycle time — stays planar.
pub fn table4_with_layers(comp: &ApComposition, layers: u32) -> Vec<Table4Row> {
    ITRS_YEARS
        .iter()
        .map(|p| {
            let aps = comp.aps_per_die(p) * u64::from(layers);
            Table4Row {
                year: p.year,
                process_nm: p.node_nm,
                available_aps: aps,
                wire_delay_ns: global_wire_delay_ns(p),
                peak_gops: aps as f64 * f64::from(comp.compute_objects) / global_wire_delay_ns(p),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::itrs::year;

    /// Table 4 as printed.
    const PAPER: [(u32, f64, u64, f64, f64); 6] = [
        (2010, 45.0, 12, 1.08, 178.0),
        (2011, 40.0, 16, 1.21, 211.0),
        (2012, 36.0, 21, 1.21, 276.0),
        (2013, 32.0, 24, 1.43, 269.0),
        (2014, 28.0, 34, 1.58, 345.0),
        (2015, 25.0, 41, 1.56, 432.0),
    ];

    #[test]
    fn ap_count_matches_table4_exactly() {
        let comp = ApComposition::default();
        for (y, _, want_aps, _, _) in PAPER {
            let p = year(y).unwrap();
            assert_eq!(comp.aps_per_die(&p), want_aps, "year {y}: APs mismatch");
        }
    }

    #[test]
    fn gops_matches_table4_within_rounding() {
        // The paper's GOPS column carries internal rounding slack (the
        // 2012 and 2015 entries are not consistent with the printed
        // delays); the recomputation lands within 3%.
        let comp = ApComposition::default();
        for (y, _, _, _, want_gops) in PAPER {
            let p = year(y).unwrap();
            let got = comp.peak_gops(&p);
            let rel = (got - want_gops).abs() / want_gops;
            assert!(
                rel < 0.03,
                "year {y}: GOPS {got:.1} vs paper {want_gops} ({:.1}%)",
                rel * 100.0
            );
        }
    }

    #[test]
    fn headline_2012_result() {
        // "The performance of a pure 64bit 276 GOPS can be achieved in a
        // typical 1cm² area … on current process technology."
        let comp = ApComposition::default();
        let p = year(2012).unwrap();
        let gops = comp.peak_gops(&p);
        assert!((270.0..285.0).contains(&gops), "2012 GOPS {gops:.1}");
    }

    #[test]
    fn table4_produces_all_years() {
        let rows = table4(&ApComposition::default());
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0].year, 2010);
        assert_eq!(rows[5].available_aps, 41);
    }

    #[test]
    fn more_fpus_less_memory_raises_gops() {
        // §4.1's trade-off: shifting area from memory blocks to physical
        // objects increases peak GOPS at a fixed die size.
        let p = year(2012).unwrap();
        let base = ApComposition::default().peak_gops(&p);
        let fpu_heavy = ApComposition {
            compute_objects: 24,
            memory_objects: 8,
        }
        .peak_gops(&p);
        assert!(
            fpu_heavy > base,
            "fpu-heavy {fpu_heavy:.1} !> base {base:.1}"
        );
    }

    #[test]
    fn gpu_area_comparison() {
        // §4.1: "The VLSI processor is competitive with traditional GPUs,
        // which takes at least three-times the area. We obtained
        // three-times number of FPUs and memory blocks on this area size"
        // — i.e. the same resources fit in ~1/3 the area. Model the GPU as
        // the same FPU count at 3 cm²: the VLSI processor's density is at
        // least 3x.
        let comp = ApComposition::default();
        let p = year(2012).unwrap();
        let n = comp.aps_per_die(&p);
        let fpus_per_cm2 = n * u64::from(comp.compute_objects);
        let gpu_fpus_per_cm2 = fpus_per_cm2 / 3;
        assert!(fpus_per_cm2 >= 3 * gpu_fpus_per_cm2);
        assert!(fpus_per_cm2 >= 300, "hundreds of 64b FPUs on die");
    }

    #[test]
    fn die_stacking_doubles_aps_at_constant_delay() {
        let comp = ApComposition::default();
        let planar = table4(&comp);
        let stacked = table4_with_layers(&comp, 2);
        for (p, s) in planar.iter().zip(&stacked) {
            assert_eq!(s.available_aps, 2 * p.available_aps);
            assert_eq!(s.wire_delay_ns, p.wire_delay_ns);
            assert!((s.peak_gops - 2.0 * p.peak_gops).abs() < 1e-9);
        }
    }

    #[test]
    fn extreme_nodes_exceed_u32_without_saturating() {
        // A hypothetical sub-nanometre node: the die holds more APs than
        // a u32 can count. The old `as u32` cast silently pinned this at
        // u32::MAX; the u64 count reports the true number.
        let tiny = YearParams {
            year: 2199,
            node_nm: 0.001,
            gate_length_nm: 0.0005,
            rc_ns_per_mm2: 0.1,
        };
        let n = ApComposition::default().aps_per_die(&tiny);
        assert!(
            n > u64::from(u32::MAX),
            "expected > 2^32 APs at a 0.5 pm gate length, got {n}"
        );
        // And the count is exact, not a saturation artefact.
        assert_ne!(n, u64::from(u32::MAX));
        assert_ne!(n, u64::MAX);
    }

    #[test]
    fn ap_area_breakdown() {
        let comp = ApComposition::default();
        let a = comp.area_lambda2();
        // 16*5.3236e8 + 16*9.7458e8 + 7.502e7 ≈ 2.4186e10 λ².
        assert!((2.40e10..2.44e10).contains(&a), "AP area {a:.3e}");
    }
}

//! Pretty-printers that regenerate the paper's tables as text.
//!
//! Used by the `vlsi-bench` table binaries; kept here so the formatting is
//! testable and the binaries stay trivial.

use crate::area::{
    control_object_modules, memory_block_modules, physical_object_modules, total_area, ModuleArea,
};
use crate::scaling::{table4, ApComposition};
use std::fmt::Write;

fn render_area_table(title: &str, modules: &[ModuleArea]) -> String {
    let mut out = String::new();
    writeln!(out, "{title}").unwrap();
    writeln!(
        out,
        "{:<28} {:>10} {:>14}",
        "Modules", "Process[um]", "Area[lambda^2]"
    )
    .unwrap();
    for m in modules {
        writeln!(
            out,
            "{:<28} {:>10.2} {:>14.3e}",
            m.name, m.process_um, m.area_lambda2
        )
        .unwrap();
    }
    writeln!(
        out,
        "{:<28} {:>10} {:>14.3e}",
        "Total",
        "",
        total_area(modules)
    )
    .unwrap();
    out
}

/// Renders Table 1 (physical object area requirement).
pub fn table1() -> String {
    render_area_table(
        "Table 1: Physical Object Area Requirement",
        physical_object_modules(),
    )
}

/// Renders Table 2 (memory block area requirement).
pub fn table2() -> String {
    render_area_table(
        "Table 2: Memory Block Area Requirement",
        memory_block_modules(),
    )
}

/// Renders Table 3 (control objects area requirement).
pub fn table3() -> String {
    render_area_table(
        "Table 3: Control Objects Area Requirement",
        control_object_modules(),
    )
}

/// Renders Table 4 (number of APs, wire delay, and peak GOPS) for a
/// composition.
pub fn table4_text(comp: &ApComposition) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Table 4: Number of APs, Wire Delay, and Peak GOPS ({} PO + {} MO per AP, 1 cm^2 die)",
        comp.compute_objects, comp.memory_objects
    )
    .unwrap();
    writeln!(
        out,
        "{:>5} {:>8} {:>10} {:>12} {:>10}",
        "Year", "Process", "Avail.APs", "WireDelay", "PeakGOPS"
    )
    .unwrap();
    for r in table4(comp) {
        writeln!(
            out,
            "{:>5} {:>6.0}nm {:>10} {:>10.2}ns {:>10.1}",
            r.year, r.process_nm, r.available_aps, r.wire_delay_ns, r.peak_gops
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render_all_rows() {
        let t1 = table1();
        assert!(t1.contains("64b fDiv"));
        assert!(t1.contains("Total"));
        let t2 = table2();
        assert!(t2.contains("64KB SRAM"));
        let t3 = table3();
        assert!(t3.contains("WSRF"));
    }

    #[test]
    fn table4_renders_six_years() {
        let t = table4_text(&ApComposition::default());
        for y in 2010..=2015 {
            assert!(t.contains(&y.to_string()), "missing year {y}:\n{t}");
        }
        assert!(t.contains("45nm"));
        assert!(t.contains("12"));
        assert!(t.contains("41"));
    }
}

//! ITRS 2007 process parameters, 2010–2015.
//!
//! The paper's Table 4 spans process nodes 45 → 25 nm over the years
//! 2010 → 2015, "calculated using rc-delay which is referenced from [the
//! ITRS 2007 roadmap]". Two ITRS series matter:
//!
//! * `gate_length_nm` — the MPU **physical gate length**, which is the λ
//!   that converts Table 1–3's λ² areas to silicon. This identification
//!   is forced by the data: it reproduces the paper's APs-per-die column
//!   exactly for all six years (see `scaling::tests`), whereas λ =
//!   node/2 misses every row.
//! * `rc_ns_per_mm2` — the global-wire distributed-RC coefficient
//!   `k` in `delay = k · L²`. The paper prints only the resulting delays;
//!   these coefficients are calibrated so the §4 recipe lands on the
//!   printed column (rising k reflects the ITRS trend of worsening wire
//!   RC as cross-sections shrink).

/// Process parameters of one roadmap year.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct YearParams {
    /// Calendar year.
    pub year: u32,
    /// Technology node name, nm.
    pub node_nm: f64,
    /// MPU physical gate length (the λ of the area model), nm.
    pub gate_length_nm: f64,
    /// Global-wire RC coefficient, ns/mm².
    pub rc_ns_per_mm2: f64,
}

impl YearParams {
    /// λ in metres.
    pub fn lambda_m(&self) -> f64 {
        self.gate_length_nm * 1e-9
    }
}

/// The six Table 4 years.
pub const ITRS_YEARS: [YearParams; 6] = [
    YearParams {
        year: 2010,
        node_nm: 45.0,
        gate_length_nm: 18.0,
        rc_ns_per_mm2: 0.391_33,
    },
    YearParams {
        year: 2011,
        node_nm: 40.0,
        gate_length_nm: 16.0,
        rc_ns_per_mm2: 0.554_89,
    },
    YearParams {
        year: 2012,
        node_nm: 36.0,
        gate_length_nm: 14.0,
        rc_ns_per_mm2: 0.724_76,
    },
    YearParams {
        year: 2013,
        node_nm: 32.0,
        gate_length_nm: 13.0,
        rc_ns_per_mm2: 0.993_38,
    },
    YearParams {
        year: 2014,
        node_nm: 28.0,
        gate_length_nm: 11.0,
        rc_ns_per_mm2: 1.532_98,
    },
    YearParams {
        year: 2015,
        node_nm: 25.0,
        gate_length_nm: 10.0,
        rc_ns_per_mm2: 1.831_42,
    },
];

/// Looks up a roadmap year.
pub fn year(y: u32) -> Option<YearParams> {
    ITRS_YEARS.iter().copied().find(|p| p.year == y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_years_in_order() {
        assert_eq!(ITRS_YEARS.len(), 6);
        for w in ITRS_YEARS.windows(2) {
            assert!(w[0].year < w[1].year);
            assert!(w[0].node_nm > w[1].node_nm, "nodes shrink");
            assert!(w[0].gate_length_nm > w[1].gate_length_nm);
            assert!(w[0].rc_ns_per_mm2 < w[1].rc_ns_per_mm2, "wire RC worsens");
        }
    }

    #[test]
    fn lookup() {
        assert_eq!(year(2012).unwrap().node_nm, 36.0);
        assert!(year(1999).is_none());
    }

    #[test]
    fn lambda_conversion() {
        let p = year(2010).unwrap();
        assert!((p.lambda_m() - 18e-9).abs() < 1e-18);
    }
}

//! Module area inventories — Tables 1, 2, and 3.
//!
//! Areas are in λ², a process-normalised unit; the reference process of
//! each estimate (from Gupta et al. TR-00-05) is recorded alongside. The
//! divider rows use the weight values the paper estimated from
//! Govindaraju et al.

/// One row of an area table.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ModuleArea {
    /// Module name as printed in the paper.
    pub name: &'static str,
    /// Reference process of the estimate, in µm.
    pub process_um: f64,
    /// Area in λ².
    pub area_lambda2: f64,
}

/// Table 1: the physical object — the general-purpose compute fabric.
pub fn physical_object_modules() -> &'static [ModuleArea] {
    &[
        ModuleArea {
            name: "64b fMul, fAdd",
            process_um: 0.25,
            area_lambda2: 1.35e8,
        },
        ModuleArea {
            name: "64b fDiv",
            process_um: 0.25,
            area_lambda2: 0.21e8,
        },
        ModuleArea {
            name: "64b iMul + iALU/Shift",
            process_um: 0.25,
            area_lambda2: 2.90e8,
        },
        ModuleArea {
            name: "64b iDiv",
            process_um: 0.25,
            area_lambda2: 0.81e8,
        },
        ModuleArea {
            name: "64b Register x6",
            process_um: 0.25,
            area_lambda2: 5.36e6,
        },
    ]
}

/// Table 2: the memory block.
pub fn memory_block_modules() -> &'static [ModuleArea] {
    &[
        ModuleArea {
            name: "32b ALU-I",
            process_um: 0.25,
            area_lambda2: 0.86e8,
        },
        ModuleArea {
            name: "16b ALU-II x4",
            process_um: 0.21,
            area_lambda2: 1.72e8,
        },
        ModuleArea {
            name: "Instruction Reg.",
            process_um: 0.25,
            area_lambda2: 1.79e6,
        },
        ModuleArea {
            name: "64b Register x2",
            process_um: 0.25,
            area_lambda2: 1.79e6,
        },
        ModuleArea {
            name: "64KB SRAM",
            process_um: 0.35,
            area_lambda2: 7.13e8,
        },
    ]
}

/// Table 3: the control objects (register area only, as the paper notes).
pub fn control_object_modules() -> &'static [ModuleArea] {
    &[
        ModuleArea {
            name: "64b x40 Reg. in WSRF",
            process_um: 0.25,
            area_lambda2: 35.7e6,
        },
        ModuleArea {
            name: "64b x6 Reg. in CMH",
            process_um: 0.25,
            area_lambda2: 5.36e6,
        },
        ModuleArea {
            name: "64b x8 Reg. x2 in RR",
            process_um: 0.25,
            area_lambda2: 14.3e6,
        },
        ModuleArea {
            name: "64b Reg. in IRR x16",
            process_um: 0.25,
            area_lambda2: 14.3e6,
        },
        ModuleArea {
            name: "64b x2 Reg. in CFB x3",
            process_um: 0.25,
            area_lambda2: 5.36e6,
        },
    ]
}

/// Sum of a module table, in λ².
pub fn total_area(modules: &[ModuleArea]) -> f64 {
    modules.iter().map(|m| m.area_lambda2).sum()
}

/// Table 1 total (exact sum of the rows).
pub fn physical_object_area() -> f64 {
    total_area(physical_object_modules())
}

/// Table 2 total (exact sum of the rows).
pub fn memory_block_area() -> f64 {
    total_area(memory_block_modules())
}

/// Table 3 total (exact sum of the rows).
pub fn control_objects_area() -> f64 {
    total_area(control_object_modules())
}

/// Totals as printed in the paper, for comparison.
pub mod printed {
    /// Table 1's printed total.
    pub const PHYSICAL_OBJECT: f64 = 5.32e8;
    /// Table 2's printed total.
    pub const MEMORY_BLOCK: f64 = 9.75e8;
    /// Table 3's printed total.
    pub const CONTROL_OBJECTS: f64 = 75.2e6;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, rel: f64) -> bool {
        (a - b).abs() <= rel * b.abs()
    }

    #[test]
    fn table1_total_matches_paper() {
        // Exact sum 5.3236e8 vs printed 5.32e8 (paper rounds to 3 digits).
        assert!(close(
            physical_object_area(),
            printed::PHYSICAL_OBJECT,
            0.002
        ));
    }

    #[test]
    fn table2_total_matches_paper() {
        // Exact sum 9.7458e8 vs printed 9.75e8.
        assert!(close(memory_block_area(), printed::MEMORY_BLOCK, 0.002));
    }

    #[test]
    fn table3_total_matches_paper() {
        // Exact sum 75.02e6 vs printed 75.2e6 (the paper's total carries a
        // small rounding slack).
        assert!(close(
            control_objects_area(),
            printed::CONTROL_OBJECTS,
            0.005
        ));
    }

    #[test]
    fn memory_block_is_about_twice_the_physical_object() {
        // §4.1: "The total memory block takes approximately twice the area
        // of the physical object."
        let ratio = memory_block_area() / physical_object_area();
        assert!((1.7..2.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn fpu_area_fraction_below_a_third() {
        // §4.1: with a 1:2 physical:memory area ratio, "less than a 33%
        // chip area is allocated to the FPUs".
        let fpu = physical_object_area();
        let total = physical_object_area() + memory_block_area();
        assert!(fpu / total < 0.36);
    }

    #[test]
    fn srams_dominate_the_memory_block() {
        let sram = memory_block_modules()
            .iter()
            .find(|m| m.name.contains("SRAM"))
            .unwrap();
        assert!(sram.area_lambda2 / memory_block_area() > 0.7);
    }

    #[test]
    fn all_rows_positive() {
        for t in [
            physical_object_modules(),
            memory_block_modules(),
            control_object_modules(),
        ] {
            for m in t {
                assert!(m.area_lambda2 > 0.0);
                assert!(m.process_um > 0.0);
            }
        }
    }
}

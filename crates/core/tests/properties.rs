//! Property-based tests for the chip layer.

use proptest::prelude::*;
use std::collections::HashMap;
use vlsi_core::{BlockExecutor, CoreError, ProcState, VlsiChip};
use vlsi_topology::{Cluster, Coord, Region};
use vlsi_workloads::program::{BinOp, Expr, Program, Stmt};

fn chip() -> VlsiChip {
    VlsiChip::new(8, 8, Cluster::default())
}

proptest! {
    /// Gather → release restores the chip exactly: all clusters free, all
    /// switches default, and the same region gathers again.
    #[test]
    fn gather_release_roundtrip(ox in 0u16..5, oy in 0u16..5, w in 1u16..4, h in 1u16..4) {
        let mut c = chip();
        let region = Region::rect(Coord::new(ox, oy), w, h);
        let id = c.gather(region.clone()).unwrap().id;
        prop_assert_eq!(c.free_clusters(), 64 - region.len());
        c.release_processor(id).unwrap();
        prop_assert_eq!(c.free_clusters(), 64);
        prop_assert_eq!(c.fabric().programmed_coords().count(), 0);
        c.gather(region).unwrap();
    }

    /// Any sequence of rectangular gathers either succeeds on disjoint
    /// free clusters or fails atomically (no partial reservations leak).
    #[test]
    fn gathers_are_atomic(rects in prop::collection::vec((0u16..6, 0u16..6, 1u16..4, 1u16..4), 1..8)) {
        let mut c = chip();
        let mut owned = 0usize;
        for (x, y, w, h) in rects {
            let region = Region::rect(Coord::new(x, y), w, h);
            match c.gather(region.clone()) {
                Ok(_) => owned += region.len(),
                Err(CoreError::Topology(_)) | Err(CoreError::OutOfGrid(_)) => {}
                Err(e) => prop_assert!(false, "unexpected error {e}"),
            }
            prop_assert_eq!(c.free_clusters(), 64 - owned);
        }
    }

    /// The full multi-processor execution of a random two-armed program
    /// matches the IR interpreter for every input.
    #[test]
    fn partitioned_execution_matches_interpreter(
        x in -100i64..100, y in -100i64..100,
        k1 in -10i64..10, k2 in -10i64..10,
    ) {
        let p = Program {
            stmts: vec![
                Stmt::If {
                    cond: Expr::bin(BinOp::Lt, Expr::var("x"), Expr::var("y")),
                    then_branch: vec![Stmt::Assign(
                        "r".into(),
                        Expr::bin(BinOp::Mul, Expr::var("x"), Expr::Const(k1)),
                    )],
                    else_branch: vec![Stmt::Assign(
                        "r".into(),
                        Expr::bin(BinOp::Sub, Expr::var("y"), Expr::Const(k2)),
                    )],
                },
                Stmt::Assign("out".into(), Expr::bin(BinOp::Add, Expr::var("r"), Expr::Const(1))),
            ],
        };
        let mut env = HashMap::from([("x".to_string(), x), ("y".to_string(), y)]);
        p.interpret(&mut env);

        let mut c = chip();
        let exec = BlockExecutor::deploy(&mut c, p.partition()).unwrap();
        let inputs = HashMap::from([("x".to_string(), x), ("y".to_string(), y)]);
        let (got, _) = exec.run(&mut c, &inputs).unwrap();
        prop_assert_eq!(got["out"], env["out"]);
        prop_assert_eq!(got["r"], env["r"]);
    }

    /// Chip fuzz: arbitrary interleavings of gather-by-count, release,
    /// relocate, and compact keep the bookkeeping invariant —
    /// free + owned == total, and the fabric's programmed set matches the
    /// live processors' regions exactly.
    #[test]
    fn chip_resource_accounting_invariant(ops in prop::collection::vec(0u8..5, 1..30)) {
        let mut c = chip();
        let mut live: Vec<vlsi_core::ProcessorId> = Vec::new();
        for (i, op) in ops.into_iter().enumerate() {
            match op {
                0 | 1 => {
                    let k = (i % 7) + 1;
                    if let Ok(out) = c.gather_any(k) {
                        live.push(out.id);
                    }
                }
                2 => {
                    if !live.is_empty() {
                        let id = live.remove(i % live.len());
                        c.release_processor(id).unwrap();
                    }
                }
                3 => {
                    if !live.is_empty() {
                        let id = live[i % live.len()];
                        let _ = c.relocate(id);
                    }
                }
                _ => {
                    c.compact();
                }
            }
            let owned: usize = live
                .iter()
                .map(|&id| c.processor(id).unwrap().scale())
                .sum();
            prop_assert_eq!(c.free_clusters(), 64 - owned);
            // Every owned cluster's switch belongs to exactly one live
            // processor's region.
            for &id in &live {
                for cell in c.processor(id).unwrap().region.clone().cells() {
                    prop_assert_eq!(
                        c.fabric().owner(cell).map(|t| t.0),
                        Some(id.0)
                    );
                }
            }
        }
    }

    /// Lifecycle fuzz: random legal/illegal transition requests never
    /// corrupt the state machine — the state is always one of the four,
    /// and illegal requests leave it unchanged.
    #[test]
    fn lifecycle_fuzz(ops in prop::collection::vec(0u8..5, 1..40)) {
        let mut c = chip();
        let id = c.gather(Region::rect(Coord::new(0, 0), 2, 2)).unwrap().id;
        for op in ops {
            let before = c.state(id).unwrap();
            let result = match op {
                0 => c.activate(id),
                1 => c.deactivate(id),
                2 => c.sleep(id, Some(3)),
                3 => c.wake(id),
                _ => {
                    c.tick_timers(1);
                    Ok(())
                }
            };
            let after = c.state(id).unwrap();
            if result.is_err() && op != 4 {
                prop_assert_eq!(before, after, "failed op must not change state");
            }
            prop_assert!(matches!(
                after,
                ProcState::Inactive | ProcState::Active | ProcState::Sleep
            ));
        }
    }
}

//! Executing compiled, pre-placed stage programs on a chip.
//!
//! [`blockexec`](crate::blockexec) runs *control-flow* partitions: basic
//! blocks joined by jumps and branches, each lowered on the fly. The
//! compiler (`vlsi-compile`) instead emits *dataflow* partitions: a DAG
//! cut into stages that execute once each, in index order, passing
//! live values forward through mailbox memory writes — the same §2.6.2
//! choreography (the predecessor writes a successor's memory blocks
//! while the successor is inactive), but with the lowering done ahead
//! of time and the region shapes chosen by the placement pass.
//!
//! [`StagedProgram`] is that ahead-of-time artifact: per stage, the
//! logical objects, the optimised configuration stream, the live-in
//! mailbox bindings, and the live-out probe taps. [`StagedExecutor`]
//! deploys it — either wherever the allocator finds room
//! ([`StagedExecutor::deploy`]) or onto the exact rectangles the
//! compiler placed ([`StagedExecutor::deploy_placed`]) — and pushes
//! input environments through the stage chain.

use crate::chip::VlsiChip;
use crate::error::CoreError;
use crate::scaled::ProcessorId;
use std::collections::HashMap;
use std::sync::Arc;
use vlsi_object::{GlobalConfigStream, LogicalObject, ObjectId, Word};
use vlsi_topology::Region;

/// One compiled stage: a partition of the dataflow graph, lowered to
/// objects + stream, with its mailbox and probe contracts.
#[derive(Clone, Debug, PartialEq)]
pub struct StagedStage {
    /// Stage label (for traces and artifact dumps).
    pub name: String,
    /// Clusters the stage's region must span.
    pub clusters: usize,
    /// Logical objects to install.
    pub objects: Vec<LogicalObject>,
    /// Optimised global configuration stream, shared by reference: every
    /// configure of this stage (sequential runs, pipelined re-deploys)
    /// hands the same `Arc` to the AP instead of deep-copying the
    /// elements.
    pub stream: Arc<GlobalConfigStream>,
    /// Live-in value name → mailbox memory-block index (the CSD channel
    /// the predecessor writes into while this stage is inactive).
    pub inputs: Vec<(String, usize)>,
    /// Live-out value name → probe (tap) object.
    pub outputs: Vec<(String, ObjectId)>,
}

/// A compiled program: stages executed in index order, every inter-stage
/// value carried by a mailbox write.
#[derive(Clone, Debug, PartialEq)]
pub struct StagedProgram {
    /// Program name (from the source netlist).
    pub name: String,
    /// Stages in execution (topological) order.
    pub stages: Vec<StagedStage>,
    /// Program outputs: `(output name, value name)` — the value is read
    /// from the environment after the last stage retires.
    pub outputs: Vec<(String, String)>,
}

impl StagedProgram {
    /// Total clusters across all stages (the admission request).
    pub fn clusters(&self) -> usize {
        self.stages.iter().map(|s| s.clusters).sum()
    }

    /// Groups stages into dependency **levels**: stage `j` sits one
    /// level past the deepest earlier stage whose outputs feed `j`'s
    /// inputs. Stages in one level share no data edges, so the whole
    /// level can execute as a single SoA region sweep without changing
    /// any value the sequential stage walk would produce. The level
    /// count is the pipeline depth the Fig. 7(d) overlap fills.
    pub fn levels(&self) -> Vec<Vec<usize>> {
        let stages = &self.stages;
        let mut level = vec![0usize; stages.len()];
        for j in 0..stages.len() {
            let mut lv = 0;
            for (var, _) in &stages[j].inputs {
                // The value stage j reads is whatever the *latest*
                // earlier producer of `var` wrote — depend on that one.
                for i in (0..j).rev() {
                    if stages[i].outputs.iter().any(|(v, _)| v == var) {
                        lv = lv.max(level[i] + 1);
                        break;
                    }
                }
            }
            level[j] = lv;
        }
        let depth = level.iter().max().map_or(0, |m| m + 1);
        let mut groups = vec![Vec::new(); depth];
        for (j, &lv) in level.iter().enumerate() {
            groups[lv].push(j);
        }
        groups
    }
}

/// Statistics of one staged run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StagedRunStats {
    /// Stages executed (activations).
    pub stages_executed: u64,
    /// Mailbox words written between stages.
    pub mailbox_writes: u64,
    /// Total datapath execution cycles across stages.
    pub exec_cycles: u64,
    /// Total configuration cycles across stages.
    pub config_cycles: u64,
}

/// Statistics of one pipelined batch run
/// ([`StagedExecutor::run_pipelined`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineRunStats {
    /// Datasets pushed through the pipeline.
    pub datasets: u64,
    /// Wavefront ticks the drain took (`depth + datasets − 1`).
    pub ticks: u64,
    /// Stage executions across all ticks (`datasets × stages`).
    pub stages_executed: u64,
    /// Mailbox words written between stages.
    pub mailbox_writes: u64,
    /// Total datapath execution cycles across all stage slots.
    pub exec_cycles: u64,
    /// Total configuration cycles. Each stage configures **once** (its
    /// datapath stays resident across datasets), so this is the
    /// per-stage cost, not `datasets ×` it — the pipelining win.
    pub config_cycles: u64,
    /// Busy stage-slots over available stage-slots, ×1000: how full the
    /// wavefront kept the placed regions (Fig. 7(d) steady state →
    /// 1000 as `datasets → ∞`).
    pub utilization_milli: u64,
}

/// A deployed staged program: one processor per stage.
#[derive(Debug)]
pub struct StagedExecutor {
    program: StagedProgram,
    procs: Vec<ProcessorId>,
}

impl StagedExecutor {
    /// Deploys `program` wherever the allocator finds free clusters
    /// (one `gather_any` per stage). On failure, every processor
    /// gathered so far is released — the chip is left as found.
    pub fn deploy(
        chip: &mut VlsiChip,
        program: StagedProgram,
    ) -> Result<StagedExecutor, CoreError> {
        Self::deploy_with(chip, program, |chip, stage, _| {
            chip.gather_any(stage.clusters).map(|o| o.id)
        })
    }

    /// Deploys `program` onto the exact `regions` the placement pass
    /// chose (one region per stage, same order). On failure, every
    /// processor gathered so far is released.
    pub fn deploy_placed(
        chip: &mut VlsiChip,
        program: StagedProgram,
        regions: &[Region],
    ) -> Result<StagedExecutor, CoreError> {
        assert_eq!(regions.len(), program.stages.len(), "one region per stage");
        Self::deploy_with(chip, program, |chip, _, i| {
            chip.gather(regions[i].clone()).map(|o| o.id)
        })
    }

    fn deploy_with(
        chip: &mut VlsiChip,
        program: StagedProgram,
        mut gather: impl FnMut(&mut VlsiChip, &StagedStage, usize) -> Result<ProcessorId, CoreError>,
    ) -> Result<StagedExecutor, CoreError> {
        let mut procs = Vec::with_capacity(program.stages.len());
        for (i, stage) in program.stages.iter().enumerate() {
            let step = gather(chip, stage, i)
                .and_then(|id| chip.install(id, stage.objects.clone()).map(|_| id));
            match step {
                Ok(id) => procs.push(id),
                Err(e) => {
                    for id in procs {
                        let _ = chip.release_processor(id);
                    }
                    return Err(e);
                }
            }
        }
        Ok(StagedExecutor { program, procs })
    }

    /// The program's dependency levels (see [`StagedProgram::levels`]).
    fn levels(&self) -> Vec<Vec<usize>> {
        self.program.levels()
    }

    /// Runs the program for one input environment. Returns the program
    /// outputs (in [`StagedProgram::outputs`] order; absent values read
    /// as 0, matching the mailbox default) and run statistics.
    ///
    /// Stages execute level by level: each level's mailboxes are
    /// written and its processors activated and configured in stage
    /// order, then the whole level runs as one
    /// [`VlsiChip::execute_batch`] region sweep, then taps are read
    /// back in stage order. Independent stages therefore advance in one
    /// SoA sweep instead of one `execute` call each, while every value,
    /// report, and statistic stays identical to the sequential walk.
    pub fn run(
        &self,
        chip: &mut VlsiChip,
        inputs: &HashMap<String, i64>,
    ) -> Result<(Vec<i64>, StagedRunStats), CoreError> {
        let mut env = inputs.clone();
        let mut stats = StagedRunStats::default();
        for level in self.levels() {
            for &j in &level {
                let stage = &self.program.stages[j];
                let proc = self.procs[j];
                for (var, mem_block) in &stage.inputs {
                    let v = env.get(var).copied().unwrap_or(0);
                    chip.write_mailbox(proc, *mem_block, 0, &[Word::from_i64(v)])?;
                    stats.mailbox_writes += 1;
                }
                chip.activate(proc)?;
                let cfg = chip.configure(proc, Arc::clone(&stage.stream))?;
                stats.config_cycles += cfg.cycles;
            }
            let ids: Vec<ProcessorId> = level.iter().map(|&j| self.procs[j]).collect();
            let reports = chip.execute_batch(&ids, 1, 1_000_000)?;
            for (&j, report) in level.iter().zip(&reports) {
                let stage = &self.program.stages[j];
                stats.exec_cycles += report.cycles;
                stats.stages_executed += 1;
                for (var, tap) in &stage.outputs {
                    let vals =
                        report
                            .taps
                            .get(tap)
                            .filter(|v| !v.is_empty())
                            .ok_or(CoreError::Ap(vlsi_ap::ApError::ExecutionTimeout {
                                cycles: report.cycles,
                            }))?;
                    env.insert(var.clone(), vals[0].as_i64());
                }
                chip.deactivate(self.procs[j])?;
            }
        }
        Ok((self.outputs_from(&env), stats))
    }

    /// Program outputs read from a finished environment, in
    /// [`StagedProgram::outputs`] order (absent values read as 0,
    /// matching the mailbox default).
    fn outputs_from(&self, env: &HashMap<String, i64>) -> Vec<i64> {
        self.program
            .outputs
            .iter()
            .map(|(_, var)| env.get(var).copied().unwrap_or(0))
            .collect()
    }

    /// Runs the program for a *batch* of input environments with the
    /// stages overlapped across datasets — the paper's Fig. 7(d)
    /// operating mode, where successive datasets stream through the
    /// placed regions concurrently and steady-state throughput is set
    /// by the slowest stage rather than the sum of all stages.
    ///
    /// The schedule is a wavefront over the dependency levels: at tick
    /// `t`, the stages of level `l` process dataset `t − l`, so a new
    /// dataset enters level 0 every tick while deeper levels work on
    /// earlier datasets, and the batch drains in `depth + N − 1` ticks.
    /// Each tick has three supervisor phases in deterministic
    /// (level, stage) order — mailbox staging + activation, one
    /// [`VlsiChip::execute_batch`] region sweep over every in-flight
    /// stage (all distinct processors, so the whole wavefront advances
    /// as one SoA sweep on the `vlsi-par` pool), then tap readback +
    /// deactivation. Deactivating a stage at the end of its tick is
    /// what makes the *next* tick's mailbox write legal (§2.6.2 lets
    /// others write a region's memory only while it is inactive): the
    /// supervisor's per-dataset environments are the second half of the
    /// double-buffer, holding each value between the producer's
    /// readback and the consumer's staging.
    ///
    /// Each stage is configured **once**, on the tick its first dataset
    /// arrives, and its datapath then stays resident: staged streams
    /// read their mailboxes through *addressed* loads (no stream
    /// pointers advance) and `Datapath::run` clears all per-run
    /// transient state, so re-executing the resident datapath on a
    /// freshly staged mailbox produces exactly the reports a
    /// reconfigure would. Skipping the per-dataset release + management
    /// pipeline replay is where the throughput gain over N sequential
    /// [`run`](Self::run) calls comes from; outputs and taps are
    /// bit-identical, only `config_cycles` shrinks.
    ///
    /// Per processor, the operation sequence for dataset `d` is the
    /// same as the sequential walk's, and level `l` of dataset `d`
    /// always retires before level `l + 1` of dataset `d` begins, so
    /// the returned outputs are **bit-identical** to N sequential
    /// `run` calls — and, since region sweeps are bit-deterministic at
    /// any pool width, invariant across thread counts.
    ///
    /// Returns one output vector per dataset (in dataset order) plus
    /// batch statistics, and records pipeline occupancy telemetry
    /// (`staged.*`) on the chip's handle.
    pub fn run_pipelined(
        &self,
        chip: &mut VlsiChip,
        datasets: &[HashMap<String, i64>],
    ) -> Result<(Vec<Vec<i64>>, PipelineRunStats), CoreError> {
        let levels = self.levels();
        let depth = levels.len();
        let n = datasets.len();
        let mut stats = PipelineRunStats {
            datasets: n as u64,
            ..PipelineRunStats::default()
        };
        let mut envs: Vec<HashMap<String, i64>> = datasets.to_vec();
        if depth == 0 || n == 0 {
            let outputs = envs.iter().map(|env| self.outputs_from(env)).collect();
            return Ok((outputs, stats));
        }
        let ticks = depth + n - 1;
        stats.ticks = ticks as u64;
        let mut configured = vec![false; self.program.stages.len()];
        let mut busy_ticks = vec![0u64; self.program.stages.len()];
        // In-flight (stage, dataset) slots, rebuilt each tick in
        // ascending (level, stage) order — the deterministic drain order.
        let mut active: Vec<(usize, usize)> = Vec::new();
        let mut ids: Vec<ProcessorId> = Vec::new();
        for t in 0..ticks {
            active.clear();
            for (l, level) in levels.iter().enumerate() {
                if t < l || t - l >= n {
                    continue;
                }
                let d = t - l;
                for &j in level {
                    let stage = &self.program.stages[j];
                    let proc = self.procs[j];
                    for (var, mem_block) in &stage.inputs {
                        let v = envs[d].get(var).copied().unwrap_or(0);
                        chip.write_mailbox(proc, *mem_block, 0, &[Word::from_i64(v)])?;
                        stats.mailbox_writes += 1;
                    }
                    chip.activate(proc)?;
                    if !configured[j] {
                        let cfg = chip.configure(proc, Arc::clone(&stage.stream))?;
                        stats.config_cycles += cfg.cycles;
                        configured[j] = true;
                    }
                    active.push((j, d));
                }
            }
            ids.clear();
            ids.extend(active.iter().map(|&(j, _)| self.procs[j]));
            let reports = chip.execute_batch(&ids, 1, 1_000_000)?;
            for (&(j, d), report) in active.iter().zip(&reports) {
                let stage = &self.program.stages[j];
                stats.exec_cycles += report.cycles;
                stats.stages_executed += 1;
                busy_ticks[j] += 1;
                for (var, tap) in &stage.outputs {
                    let vals =
                        report
                            .taps
                            .get(tap)
                            .filter(|v| !v.is_empty())
                            .ok_or(CoreError::Ap(vlsi_ap::ApError::ExecutionTimeout {
                                cycles: report.cycles,
                            }))?;
                    envs[d].insert(var.clone(), vals[0].as_i64());
                }
                chip.deactivate(self.procs[j])?;
            }
        }
        let slots = stats.ticks * self.program.stages.len() as u64;
        let busy: u64 = busy_ticks.iter().sum();
        stats.utilization_milli = (busy * 1000).checked_div(slots).unwrap_or(0);
        let tel = chip.telemetry();
        tel.count("staged.pipeline_runs", 1);
        tel.count("staged.pipeline_ticks", stats.ticks);
        tel.count("staged.utilization_milli", stats.utilization_milli);
        for (j, &b) in busy_ticks.iter().enumerate() {
            tel.gauge_set_at(
                "staged.occupancy_milli",
                j as u64,
                (b * 1000 / stats.ticks) as i64,
            );
        }
        let outputs = envs.iter().map(|env| self.outputs_from(env)).collect();
        Ok((outputs, stats))
    }

    /// The deployed program.
    pub fn program(&self) -> &StagedProgram {
        &self.program
    }

    /// The processors holding the stages, in stage order.
    pub fn processors(&self) -> &[ProcessorId] {
        &self.procs
    }

    /// Releases every stage processor (all must be inactive — `run`
    /// leaves them that way).
    pub fn release(self, chip: &mut VlsiChip) -> Result<(), CoreError> {
        for id in self.procs {
            chip.release_processor(id)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_object::{GlobalConfigElement, LocalConfig, Operation};
    use vlsi_topology::{Cluster, Coord};

    /// Hand-build a two-stage program computing `(a + b) * c`:
    /// stage 0 computes `t = a + b`, stage 1 computes `out = t * c`.
    fn two_stage_program() -> StagedProgram {
        // Stage 0: mailbox loads a (block 0), b (block 1); t = a + b.
        let s0 = {
            let a = ObjectId(0);
            let b = ObjectId(1);
            let addr_a = ObjectId(2);
            let addr_b = ObjectId(3);
            let sum = ObjectId(4);
            let probe = ObjectId(5);
            let objects = vec![
                LogicalObject::memory(a, LocalConfig::op(Operation::Load)).with_init(vec![
                    Word(0),
                    Word(0),
                    Word(0),
                ]),
                LogicalObject::memory(b, LocalConfig::op(Operation::Load)).with_init(vec![
                    Word(0),
                    Word(1),
                    Word(0),
                ]),
                LogicalObject::compute(addr_a, LocalConfig::with_imm(Operation::Const, Word(0))),
                LogicalObject::compute(addr_b, LocalConfig::with_imm(Operation::Const, Word(0))),
                LogicalObject::compute(sum, LocalConfig::op(Operation::IAdd)),
                LogicalObject::compute(probe, LocalConfig::op(Operation::Pass)),
            ];
            let stream: Arc<GlobalConfigStream> = Arc::new(
                [
                    GlobalConfigElement::unary(a, addr_a),
                    GlobalConfigElement::unary(b, addr_b),
                    GlobalConfigElement::binary(sum, a, b),
                    GlobalConfigElement::unary(probe, sum),
                ]
                .into_iter()
                .collect(),
            );
            StagedStage {
                name: "s0".into(),
                clusters: 4,
                objects,
                stream,
                inputs: vec![("a".into(), 0), ("b".into(), 1)],
                outputs: vec![("t".into(), probe)],
            }
        };
        // Stage 1: mailbox loads t (block 0), c (block 1); out = t * c.
        let s1 = {
            let t = ObjectId(0);
            let c = ObjectId(1);
            let addr_t = ObjectId(2);
            let addr_c = ObjectId(3);
            let mul = ObjectId(4);
            let probe = ObjectId(5);
            let objects = vec![
                LogicalObject::memory(t, LocalConfig::op(Operation::Load)).with_init(vec![
                    Word(0),
                    Word(0),
                    Word(0),
                ]),
                LogicalObject::memory(c, LocalConfig::op(Operation::Load)).with_init(vec![
                    Word(0),
                    Word(1),
                    Word(0),
                ]),
                LogicalObject::compute(addr_t, LocalConfig::with_imm(Operation::Const, Word(0))),
                LogicalObject::compute(addr_c, LocalConfig::with_imm(Operation::Const, Word(0))),
                LogicalObject::compute(mul, LocalConfig::op(Operation::IMul)),
                LogicalObject::compute(probe, LocalConfig::op(Operation::Pass)),
            ];
            let stream: Arc<GlobalConfigStream> = Arc::new(
                [
                    GlobalConfigElement::unary(t, addr_t),
                    GlobalConfigElement::unary(c, addr_c),
                    GlobalConfigElement::binary(mul, t, c),
                    GlobalConfigElement::unary(probe, mul),
                ]
                .into_iter()
                .collect(),
            );
            StagedStage {
                name: "s1".into(),
                clusters: 4,
                objects,
                stream,
                inputs: vec![("t".into(), 0), ("c".into(), 1)],
                outputs: vec![("out".into(), probe)],
            }
        };
        StagedProgram {
            name: "madd".into(),
            stages: vec![s0, s1],
            outputs: vec![("result".into(), "out".into())],
        }
    }

    #[test]
    fn staged_chain_passes_values_by_mailbox() {
        let mut chip = VlsiChip::new(8, 8, Cluster::default());
        let exec = StagedExecutor::deploy(&mut chip, two_stage_program()).unwrap();
        assert_eq!(exec.processors().len(), 2);
        for (a, b, c) in [(2i64, 3i64, 4i64), (-5, 5, 7), (0, 0, 9)] {
            let inputs = HashMap::from([
                ("a".to_string(), a),
                ("b".to_string(), b),
                ("c".to_string(), c),
            ]);
            let (out, stats) = exec.run(&mut chip, &inputs).unwrap();
            assert_eq!(out, vec![(a.wrapping_add(b)).wrapping_mul(c)]);
            assert_eq!(stats.stages_executed, 2);
            assert_eq!(stats.mailbox_writes, 4);
        }
        exec.release(&mut chip).unwrap();
    }

    #[test]
    fn deploy_placed_binds_exact_regions() {
        let mut chip = VlsiChip::new(8, 8, Cluster::default());
        let regions = vec![
            Region::rect(Coord::new(0, 0), 2, 2),
            Region::rect(Coord::new(4, 0), 2, 2),
        ];
        let exec = StagedExecutor::deploy_placed(&mut chip, two_stage_program(), &regions).unwrap();
        let inputs = HashMap::from([
            ("a".to_string(), 10i64),
            ("b".to_string(), 20i64),
            ("c".to_string(), 3i64),
        ]);
        let (out, _) = exec.run(&mut chip, &inputs).unwrap();
        assert_eq!(out, vec![90]);
        exec.release(&mut chip).unwrap();
        assert_eq!(chip.free_clusters(), 64);
    }

    /// Three stages: s0 and s1 are independent (level 0), s2 consumes
    /// both (level 1) — `t0 + t1` where `t0 = a + b`, `t1 = a * b`.
    fn diamond_program() -> StagedProgram {
        let arith_stage = |name: &str, op: Operation, out_var: &str| {
            let x = ObjectId(0);
            let y = ObjectId(1);
            let addr_x = ObjectId(2);
            let addr_y = ObjectId(3);
            let f = ObjectId(4);
            let probe = ObjectId(5);
            let objects = vec![
                LogicalObject::memory(x, LocalConfig::op(Operation::Load)).with_init(vec![
                    Word(0),
                    Word(0),
                    Word(0),
                ]),
                LogicalObject::memory(y, LocalConfig::op(Operation::Load)).with_init(vec![
                    Word(0),
                    Word(1),
                    Word(0),
                ]),
                LogicalObject::compute(addr_x, LocalConfig::with_imm(Operation::Const, Word(0))),
                LogicalObject::compute(addr_y, LocalConfig::with_imm(Operation::Const, Word(0))),
                LogicalObject::compute(f, LocalConfig::op(op)),
                LogicalObject::compute(probe, LocalConfig::op(Operation::Pass)),
            ];
            let stream: Arc<GlobalConfigStream> = Arc::new(
                [
                    GlobalConfigElement::unary(x, addr_x),
                    GlobalConfigElement::unary(y, addr_y),
                    GlobalConfigElement::binary(f, x, y),
                    GlobalConfigElement::unary(probe, f),
                ]
                .into_iter()
                .collect(),
            );
            StagedStage {
                name: name.into(),
                clusters: 4,
                objects,
                stream,
                inputs: vec![("a".into(), 0), ("b".into(), 1)],
                outputs: vec![(out_var.into(), probe)],
            }
        };
        let mut join = arith_stage("join", Operation::IAdd, "out");
        join.inputs = vec![("t0".into(), 0), ("t1".into(), 1)];
        StagedProgram {
            name: "diamond".into(),
            stages: vec![
                arith_stage("s0", Operation::IAdd, "t0"),
                arith_stage("s1", Operation::IMul, "t1"),
                join,
            ],
            outputs: vec![("result".into(), "out".into())],
        }
    }

    #[test]
    fn independent_stages_share_a_level_and_batch() {
        let mut chip = VlsiChip::new(8, 8, Cluster::default());
        let exec = StagedExecutor::deploy(&mut chip, diamond_program()).unwrap();
        assert_eq!(
            exec.levels(),
            vec![vec![0, 1], vec![2]],
            "s0/s1 independent, join depends on both"
        );
        for (a, b) in [(2i64, 3i64), (-4, 6), (0, 9)] {
            let inputs = HashMap::from([("a".to_string(), a), ("b".to_string(), b)]);
            let (out, stats) = exec.run(&mut chip, &inputs).unwrap();
            let expect = a.wrapping_add(b).wrapping_add(a.wrapping_mul(b));
            assert_eq!(out, vec![expect]);
            assert_eq!(stats.stages_executed, 3);
            assert_eq!(stats.mailbox_writes, 6);
        }
        exec.release(&mut chip).unwrap();
        assert_eq!(chip.free_clusters(), 64);
    }

    #[test]
    fn chained_stages_stay_sequentially_levelled() {
        let mut chip = VlsiChip::new(8, 8, Cluster::default());
        let exec = StagedExecutor::deploy(&mut chip, two_stage_program()).unwrap();
        assert_eq!(
            exec.levels(),
            vec![vec![0], vec![1]],
            "s1 reads s0's t: strictly sequential"
        );
        exec.release(&mut chip).unwrap();
    }

    #[test]
    fn failed_deploy_releases_partial_gathers() {
        // A 2×2 die cannot hold two 4-cluster stages: the second gather
        // fails, and the first must be rolled back.
        let mut chip = VlsiChip::new(2, 2, Cluster::default());
        let err = StagedExecutor::deploy(&mut chip, two_stage_program());
        assert!(err.is_err());
        assert_eq!(chip.free_clusters(), 4);
    }

    /// Deterministic dataset batch for the equivalence tests.
    fn batch(vars: &[&str], n: usize) -> Vec<HashMap<String, i64>> {
        (0..n)
            .map(|d| {
                vars.iter()
                    .enumerate()
                    .map(|(k, v)| {
                        (
                            v.to_string(),
                            (d as i64 + 1) * 13 - 7 * k as i64 - (d as i64 % 3) * 101,
                        )
                    })
                    .collect()
            })
            .collect()
    }

    /// The pipelined wavefront must reproduce N sequential runs bit for
    /// bit, on both a chained and a diamond program.
    #[test]
    fn pipelined_batch_matches_sequential_runs() {
        for (program, vars) in [
            (two_stage_program(), vec!["a", "b", "c"]),
            (diamond_program(), vec!["a", "b"]),
        ] {
            let mut chip = VlsiChip::new(8, 8, Cluster::default());
            let depth = program.levels().len();
            let stages = program.stages.len() as u64;
            let exec = StagedExecutor::deploy(&mut chip, program).unwrap();
            let datasets = batch(&vars, 7);
            let mut seq = Vec::new();
            let mut seq_stats = StagedRunStats::default();
            for ds in &datasets {
                let (out, s) = exec.run(&mut chip, ds).unwrap();
                seq.push(out);
                seq_stats.exec_cycles += s.exec_cycles;
                seq_stats.mailbox_writes += s.mailbox_writes;
            }
            let (pipe, stats) = exec.run_pipelined(&mut chip, &datasets).unwrap();
            assert_eq!(pipe, seq, "pipelined outputs must equal sequential");
            assert_eq!(stats.datasets, 7);
            assert_eq!(stats.ticks, (depth + 7 - 1) as u64);
            assert_eq!(stats.stages_executed, 7 * stages);
            assert_eq!(stats.mailbox_writes, seq_stats.mailbox_writes);
            assert_eq!(
                stats.exec_cycles, seq_stats.exec_cycles,
                "resident re-execution must cost the same cycles"
            );
            assert_eq!(
                stats.utilization_milli,
                7000 * stages / (stats.ticks * stages)
            );
            exec.release(&mut chip).unwrap();
            assert_eq!(chip.free_clusters(), 64);
        }
    }

    /// Same equivalence on a die with defective clusters: the allocator
    /// routes the stages around the defects, and the overlapped batch
    /// still matches the sequential walk.
    #[test]
    fn pipelined_batch_matches_sequential_with_defects() {
        let mut chip = VlsiChip::new(8, 8, Cluster::default());
        for c in [Coord::new(0, 0), Coord::new(3, 2), Coord::new(5, 5)] {
            chip.mark_defective(c);
        }
        let exec = StagedExecutor::deploy(&mut chip, diamond_program()).unwrap();
        let datasets = batch(&["a", "b"], 5);
        let seq: Vec<Vec<i64>> = datasets
            .iter()
            .map(|ds| exec.run(&mut chip, ds).unwrap().0)
            .collect();
        let (pipe, _) = exec.run_pipelined(&mut chip, &datasets).unwrap();
        assert_eq!(pipe, seq, "defect-routed pipeline must match sequential");
        exec.release(&mut chip).unwrap();
    }

    /// Degenerate batches: empty (no ticks) and singleton (the wavefront
    /// collapses to the sequential walk).
    #[test]
    fn pipelined_batch_degenerate_sizes() {
        let mut chip = VlsiChip::new(8, 8, Cluster::default());
        let exec = StagedExecutor::deploy(&mut chip, two_stage_program()).unwrap();
        let (outs, stats) = exec.run_pipelined(&mut chip, &[]).unwrap();
        assert!(outs.is_empty());
        assert_eq!(stats, PipelineRunStats::default());
        let one = batch(&["a", "b", "c"], 1);
        let (outs, stats) = exec.run_pipelined(&mut chip, &one).unwrap();
        assert_eq!(outs, vec![exec.run(&mut chip, &one[0]).unwrap().0]);
        assert_eq!(stats.ticks, 2);
        assert_eq!(stats.utilization_milli, 500, "1 dataset fills half");
        exec.release(&mut chip).unwrap();
    }

    /// Pipeline occupancy telemetry lands on the chip's handle,
    /// deterministically.
    #[test]
    fn pipelined_batch_records_occupancy_telemetry() {
        let handle = vlsi_telemetry::TelemetryHandle::active();
        let mut chip = VlsiChip::with_telemetry(8, 8, Cluster::default(), handle.clone());
        let exec = StagedExecutor::deploy(&mut chip, diamond_program()).unwrap();
        let datasets = batch(&["a", "b"], 4);
        let (_, stats) = exec.run_pipelined(&mut chip, &datasets).unwrap();
        let snap = handle.snapshot();
        assert_eq!(snap.counter("staged.pipeline_runs"), 1);
        assert_eq!(snap.counter("staged.pipeline_ticks"), stats.ticks);
        assert_eq!(
            snap.counter("staged.utilization_milli"),
            stats.utilization_milli
        );
        let json = snap.to_json();
        assert!(
            json.contains("staged.occupancy_milli[0]")
                && json.contains("staged.occupancy_milli[2]"),
            "per-stage occupancy gauges must export: {json}"
        );
        exec.release(&mut chip).unwrap();
    }
}

//! A gathered (scaled) processor: region + fold + lifecycle + AP.

use crate::state::ProcState;
use std::fmt;
use vlsi_ap::{AdaptiveProcessor, ApConfig};
use vlsi_topology::{Cluster, FoldMap, Region};

/// Identifier of a scaled processor. Doubles as the switch-fabric
/// [`RegionTag`](vlsi_topology::switch::RegionTag) value.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProcessorId(pub u32);

impl fmt::Display for ProcessorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc{}", self.0)
    }
}

/// One scaled processor on the chip.
#[derive(Clone, Debug)]
pub struct ScaledProcessor {
    /// The processor's identity (also its switch reservation tag).
    pub id: ProcessorId,
    /// The clusters it gathered.
    pub region: Region,
    /// The folded linear order of its stack through the region.
    pub fold: FoldMap,
    /// Whether the fold was closed into a ring (Figure 5).
    pub ring: bool,
    /// Lifecycle state (Figure 6(e)).
    pub state: ProcState,
    /// The adaptive processor structured from the gathered resources.
    pub ap: AdaptiveProcessor,
    /// Cycles the configuration worms took to program the region (max
    /// worm latency).
    pub config_latency: u64,
    /// Remaining sleep-timer ticks (wakes at 0), if sleeping on a timer.
    pub sleep_timer: Option<u64>,
}

impl ScaledProcessor {
    /// Builds the AP configuration implied by a gathered region.
    ///
    /// Every gathered cluster brings its own WSRF bank alongside its
    /// objects — §2.6.1: "Cache hit detection can be centrally processed
    /// on the WSRF … Searching in WSRFs can be performed in parallel" —
    /// so a fused processor's acquirement capacity scales with the number
    /// of clusters, not just its array.
    pub fn ap_config(region: &Region, cluster: &Cluster) -> ApConfig {
        let n = region.len();
        let compute = n * cluster.compute_objects;
        let memory = n * cluster.memory_objects;
        let default = ApConfig::default();
        ApConfig {
            compute_objects: compute,
            memory_objects: memory,
            channels: ((compute + memory) / 2).max(1),
            wsrf_entries: default.wsrf_entries * n.max(1),
            ..default
        }
    }

    /// Number of clusters gathered.
    pub fn scale(&self) -> usize {
        self.region.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_topology::Coord;

    #[test]
    fn ap_config_scales_with_region() {
        let cluster = Cluster::default(); // 4 + 4 + 1
        let small = ScaledProcessor::ap_config(&Region::rect(Coord::new(0, 0), 1, 1), &cluster);
        assert_eq!(small.compute_objects, 4);
        assert_eq!(small.memory_objects, 4);
        assert_eq!(small.channels, 4);
        // A 2x2 gather yields the paper's 16 + 16 minimum AP.
        let min_ap = ScaledProcessor::ap_config(&Region::rect(Coord::new(0, 0), 2, 2), &cluster);
        assert_eq!(min_ap.compute_objects, 16);
        assert_eq!(min_ap.memory_objects, 16);
        assert_eq!(min_ap.channels, 16);
    }

    #[test]
    fn wsrf_banks_scale_with_clusters() {
        let cluster = Cluster::default();
        let one = ScaledProcessor::ap_config(&Region::rect(Coord::new(0, 0), 1, 1), &cluster);
        let four = ScaledProcessor::ap_config(&Region::rect(Coord::new(0, 0), 2, 2), &cluster);
        assert_eq!(four.wsrf_entries, 4 * one.wsrf_entries);
        assert_eq!(one.wsrf_entries, 40);
    }
}

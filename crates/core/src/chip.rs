//! The VLSI chip: cluster grid + switch fabric + NoC + scaled processors.
//!
//! Scaling is implemented the way the paper insists it must be: the
//! supervisor injects one **configuration worm** per cluster of the region
//! into the router network; each worm's payload is the target switch's
//! programming word; when the worm arrives, the reservation flag is stored
//! and the switch registers are written. "There is no specific logic
//! circuit required for the scaling" (§6) — gathering a processor is
//! nothing but routing and stores, and the only arbitration is the
//! reservation flag that makes concurrent gathers conflict-free.

use crate::error::CoreError;
use crate::region;
use crate::scaled::{ProcessorId, ScaledProcessor};
use crate::state::ProcState;
use std::collections::BTreeMap;
use std::sync::Arc;
use vlsi_ap::{AdaptiveProcessor, ConfigureOutcome, ExecutionReport, SoaLane};
use vlsi_noc::NocNetwork;
use vlsi_object::{GlobalConfigStream, LogicalObject, ObjectId, Word};
use vlsi_par::Pool;
use vlsi_telemetry::TelemetryHandle;
use vlsi_topology::switch::RegionTag;
use vlsi_topology::{
    Cluster, ClusterGrid, Coord, Dir, FabricIndex, Region, SwitchFabric, SwitchState,
};

/// How configuration data reaches the region's switches (§3.3 leaves the
/// worm shape open; Figure 7(c) draws a path-shaped configuration).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ConfigStrategy {
    /// One worm per cluster, each routed XY from the supervisor. Worms
    /// are independent, so the NoC can pipeline them; total switch
    /// traffic is `Σ distance(supervisor, cluster)`.
    #[default]
    UnicastWorms,
    /// A single worm that travels the region's fold path, storing each
    /// cluster's reservation flag and program as it passes (the shape
    /// Figure 7(c) draws). Cheaper in traversed links when the region is
    /// far from the supervisor; strictly serial.
    TravelingWorm,
}

/// Chip-wide metric snapshot (see [`VlsiChip::metrics`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ChipMetrics {
    /// Processors currently allocated.
    pub live_processors: usize,
    /// Merged adaptive-processor counters across live processors.
    pub ap: vlsi_ap::ApMetrics,
    /// Total NoC cycles simulated.
    pub noc_cycles: u64,
    /// Worms delivered (configuration + messages).
    pub noc_worms_delivered: u64,
    /// Router-to-router link crossings.
    pub noc_link_crossings: u64,
    /// Switch programming-register stores.
    pub switch_stores: u64,
}

/// Result of gathering a region into a processor.
#[derive(Clone, Debug)]
pub struct GatherOutcome {
    /// The new processor's ID.
    pub id: ProcessorId,
    /// Configuration worms injected (one per cluster).
    pub worms: usize,
    /// Maximum worm latency — the configuration latency of the scaling
    /// operation, in NoC cycles.
    pub config_latency: u64,
    /// Switch-programming stores performed.
    pub switch_stores: u64,
}

/// The chip.
///
/// ```
/// use vlsi_core::{ProcState, VlsiChip};
/// use vlsi_topology::{Cluster, Coord, Region};
///
/// let mut chip = VlsiChip::new(8, 8, Cluster::default());
/// // Gather the paper's minimum AP: 2x2 clusters = 16 PO + 16 MO.
/// let gathered = chip.gather(Region::rect(Coord::new(0, 0), 2, 2)).unwrap();
/// assert_eq!(chip.state(gathered.id).unwrap(), ProcState::Inactive);
/// assert!(gathered.config_latency > 0); // worms took real NoC cycles
///
/// // Lifecycle: inactive -> active -> inactive -> release.
/// chip.activate(gathered.id).unwrap();
/// chip.deactivate(gathered.id).unwrap();
/// chip.release_processor(gathered.id).unwrap();
/// assert_eq!(chip.free_clusters(), 64);
/// ```
#[derive(Debug)]
pub struct VlsiChip {
    grid: ClusterGrid,
    fabric: SwitchFabric,
    noc: NocNetwork,
    processors: BTreeMap<ProcessorId, ScaledProcessor>,
    /// Flat occupancy mirror of the fabric's owner state plus the defect
    /// set: O(1) free counts and point probes, O(region) fit scans. The
    /// fabric remains the authority on switch state; the index is kept
    /// in sync at the owner-mutation funnels ([`Self::apply_worm`],
    /// [`Self::release_processor`], [`Self::relocate`]) and replaces the
    /// hash-ordered `HashSet<Coord>` of defects with a deterministic
    /// row-major slab.
    index: FabricIndex,
    supervisor: Coord,
    next_id: u32,
    strategy: ConfigStrategy,
    /// Worker pool for [`Self::execute_batch`] region sweeps. The
    /// default is the inline serial pool;
    /// [`Self::set_region_parallel`] attaches a threaded one.
    region_pool: Arc<Pool>,
    /// Observability sink; the default handle is a no-op. Threaded into
    /// the fabric, the NoC, and every gathered processor's AP, so one
    /// registry sees the whole chip.
    telemetry: TelemetryHandle,
}

// --- worm payload encoding -------------------------------------------------

fn encode_dir(d: Option<Dir>) -> u64 {
    match d {
        None => 0,
        Some(d) => d.index() as u64 + 1,
    }
}

fn decode_dir(v: u64) -> Option<Dir> {
    Dir::ALL.get((v as usize).checked_sub(1)?).copied()
}

/// Packs one switch program into a payload word.
fn encode_program(s: &SwitchState) -> u64 {
    let mut w = encode_dir(s.shift_in) | (encode_dir(s.shift_out) << 3);
    for (i, &b) in s.chained.iter().enumerate() {
        if b {
            w |= 1 << (8 + i);
        }
    }
    w
}

/// Unpacks a payload word into a switch program.
fn decode_program(w: u64) -> SwitchState {
    let mut chained = [false; 6];
    for (i, c) in chained.iter_mut().enumerate() {
        *c = (w >> (8 + i)) & 1 == 1;
    }
    SwitchState {
        shift_in: decode_dir(w & 0x7),
        shift_out: decode_dir((w >> 3) & 0x7),
        chained,
        reserved_by: None,
    }
}

impl VlsiChip {
    /// A planar chip of `width × height` clusters, supervised from the
    /// corner router (0,0), with telemetry disabled.
    pub fn new(width: u16, height: u16, cluster: Cluster) -> VlsiChip {
        VlsiChip::with_telemetry(width, height, cluster, TelemetryHandle::disabled())
    }

    /// A chip recording into `telemetry`. The handle reaches every layer:
    /// the switch fabric (`topology.*`), the NoC (`noc.*`), each gathered
    /// processor's AP and CSD (`ap.*`, `csd.*`), plus the chip's own
    /// `core.*` instruments — scaling-operation counters, the
    /// `core.scaling_latency` histogram (configuration latency per gather,
    /// in NoC cycles), and `gather` trace spans on the `core` track
    /// stamped with the NoC clock.
    pub fn with_telemetry(
        width: u16,
        height: u16,
        cluster: Cluster,
        telemetry: TelemetryHandle,
    ) -> VlsiChip {
        VlsiChip {
            grid: ClusterGrid::new(width, height, cluster),
            fabric: SwitchFabric::sized_with_telemetry(width, height, telemetry.clone()),
            noc: NocNetwork::with_telemetry(width, height, telemetry.clone()),
            processors: BTreeMap::new(),
            index: FabricIndex::new(width, height),
            supervisor: Coord::new(0, 0),
            next_id: 1,
            strategy: ConfigStrategy::default(),
            region_pool: Pool::serial(),
            telemetry,
        }
    }

    /// The telemetry handle this chip records into.
    pub fn telemetry(&self) -> &TelemetryHandle {
        &self.telemetry
    }

    /// The chip floorplan.
    pub fn grid(&self) -> &ClusterGrid {
        &self.grid
    }

    /// The switch fabric (for inspection).
    pub fn fabric(&self) -> &SwitchFabric {
        &self.fabric
    }

    /// The NoC (for inspection).
    pub fn noc(&self) -> &NocNetwork {
        &self.noc
    }

    /// Attaches a worker pool to the NoC: loaded ticks shard the mesh
    /// into row stripes and run on the pool, bit-identical to the serial
    /// schedule at every thread count. `min_resident` gates the fan-out —
    /// cycles with fewer resident flits stay single-shard (an overhead
    /// control, never observable in results).
    pub fn set_noc_parallel(&mut self, pool: std::sync::Arc<vlsi_par::Pool>, min_resident: usize) {
        self.noc.set_parallel(pool, min_resident);
    }

    /// Attaches a worker pool to [`Self::execute_batch`]: region sweeps
    /// shard their lanes into contiguous row stripes and run on the
    /// pool, bit-identical to the serial schedule at every thread count
    /// (lanes are fully independent).
    pub fn set_region_parallel(&mut self, pool: Arc<Pool>) {
        self.region_pool = pool;
    }

    /// Marks a cluster defective: no future gather may include it.
    pub fn mark_defective(&mut self, c: Coord) {
        self.index.mark_defective(c);
    }

    /// Whether a cluster is marked defective.
    pub fn is_defective(&self, c: Coord) -> bool {
        self.index.is_defective(c)
    }

    /// Reports a stuck programmable switch at `c`: the fabric records
    /// the stuck-at fault (all further programming there fails typed)
    /// and the cluster is marked defective so region allocation routes
    /// around it. This is the topology layer's fault report propagating
    /// into the resource-allocation view — the caller (typically the
    /// runtime) then relocates whatever was running on the cluster.
    pub fn mark_switch_stuck(&mut self, c: Coord) {
        self.fabric.mark_stuck(c);
        self.index.mark_defective(c);
    }

    /// Whether the programmable switch at `c` is marked stuck.
    pub fn is_switch_stuck(&self, c: Coord) -> bool {
        self.fabric.is_stuck(c)
    }

    /// Live processors, in ID order.
    pub fn processors(&self) -> impl Iterator<Item = &ScaledProcessor> {
        self.processors.values()
    }

    /// The processor with `id`.
    pub fn processor(&self, id: ProcessorId) -> Result<&ScaledProcessor, CoreError> {
        self.processors
            .get(&id)
            .ok_or(CoreError::UnknownProcessor(id))
    }

    fn processor_mut(&mut self, id: ProcessorId) -> Result<&mut ScaledProcessor, CoreError> {
        self.processors
            .get_mut(&id)
            .ok_or(CoreError::UnknownProcessor(id))
    }

    /// The lifecycle state of `id`.
    pub fn state(&self, id: ProcessorId) -> Result<ProcState, CoreError> {
        Ok(self.processor(id)?.state)
    }

    /// Clusters not owned by any processor and not defective — O(1), read
    /// from the incrementally-maintained [`FabricIndex`].
    pub fn free_clusters(&self) -> usize {
        self.index.free_clusters()
    }

    /// Total clusters on the die (free, owned, and defective alike).
    pub fn total_clusters(&self) -> usize {
        self.grid.cluster_count()
    }

    /// Clusters currently marked defective.
    pub fn defective_count(&self) -> usize {
        self.index.defect_count()
    }

    /// Defective coordinates in row-major order — deterministic, unlike
    /// the hash-ordered set this view replaced.
    pub fn defective_coords(&self) -> impl Iterator<Item = Coord> + '_ {
        self.index.defect_coords()
    }

    /// Clusters usable for gathering in principle: the die minus its
    /// defects (some may currently be owned). The ceiling any single
    /// resource request can ever reach.
    pub fn usable_clusters(&self) -> usize {
        self.total_clusters() - self.defective_count()
    }

    /// The processor owning cluster `c`, if any — one indexed load.
    pub fn processor_at(&self, c: Coord) -> Option<ProcessorId> {
        self.index.owner(c).map(|tag| ProcessorId(tag.0))
    }

    /// The largest cluster count [`gather_any`](Self::gather_any) would
    /// currently succeed for — a read-only admission-control probe.
    /// Because the allocator places serpentine-prefix regions, fit is
    /// monotone in the request size, so this is a binary search over one
    /// shared [`RegionFinder`](vlsi_topology::RegionFinder) snapshot —
    /// the occupancy sweep happens once, not once per probe.
    pub fn largest_gatherable(&self) -> usize {
        vlsi_topology::RegionFinder::new(&self.grid, |c| self.index.is_free(c)).largest_fit()
    }

    // --- scaling -----------------------------------------------------------

    /// Gathers a region into a new processor with a linear (open) fold.
    pub fn gather(&mut self, region: Region) -> Result<GatherOutcome, CoreError> {
        self.gather_inner(region, false)
    }

    /// Gathers a region whose fold closes into a ring (Figure 5).
    pub fn gather_ring(&mut self, region: Region) -> Result<GatherOutcome, CoreError> {
        self.gather_inner(region, true)
    }

    /// Gathers with an explicit configuration strategy.
    pub fn gather_with(
        &mut self,
        region: Region,
        strategy: ConfigStrategy,
    ) -> Result<GatherOutcome, CoreError> {
        let prev = self.strategy;
        self.strategy = strategy;
        let out = self.gather_inner(region, false);
        self.strategy = prev;
        out
    }

    fn gather_inner(&mut self, region: Region, ring: bool) -> Result<GatherOutcome, CoreError> {
        let id = ProcessorId(self.next_id);
        self.next_id += 1;
        self.telemetry
            .span_begin("core", "gather", id.0 as u64, self.noc.stats().cycles);
        let (fold, outcome) = self.program_region(&region, ring, id)?;
        self.telemetry
            .span_end("core", "gather", id.0 as u64, self.noc.stats().cycles);
        self.telemetry.count("core.gathers", 1);
        self.telemetry
            .record("core.scaling_latency", outcome.config_latency);
        let cfg = ScaledProcessor::ap_config(&region, &self.grid.cluster());
        let proc = ScaledProcessor {
            id,
            region,
            ring,
            state: ProcState::Inactive,
            ap: AdaptiveProcessor::with_telemetry(cfg, self.telemetry.clone()),
            config_latency: outcome.config_latency,
            sleep_timer: None,
            fold,
        };
        self.processors.insert(id, proc);
        Ok(outcome)
    }

    /// Validates `region`, worm-programs its switches under `id`'s tag,
    /// and returns the fold. On any failure everything programmed under
    /// the tag is rolled back.
    fn program_region(
        &mut self,
        region: &Region,
        ring: bool,
        id: ProcessorId,
    ) -> Result<(vlsi_topology::FoldMap, GatherOutcome), CoreError> {
        // Validate the region against the chip.
        for c in region.cells() {
            if !self.grid.contains(c) {
                return Err(CoreError::OutOfGrid(c));
            }
            if self.is_defective(c) {
                return Err(CoreError::DefectiveCluster(c));
            }
        }
        let fold = if ring {
            region.ring_path()?
        } else {
            region.linear_path()?
        };
        let tag = RegionTag(id.0);

        // Build each cluster's switch program from the fold.
        let path = fold.path();
        let stores_before = self.fabric.store_count();
        let mut programs: Vec<(Coord, u64)> = Vec::with_capacity(path.len());
        for (i, &c) in path.iter().enumerate() {
            let prev = if i > 0 {
                Some(path[i - 1])
            } else if ring {
                path.last().copied().filter(|_| path.len() >= 3)
            } else {
                None
            };
            let next = if i + 1 < path.len() {
                Some(path[i + 1])
            } else if ring && path.len() >= 3 {
                Some(path[0])
            } else {
                None
            };
            let mut program = SwitchState::default();
            if let Some(p) = prev {
                let d = p.dir_to(c).expect("fold hops are adjacent");
                program.shift_in = Some(d.opposite());
                program.chained[d.opposite().index()] = true;
            }
            if let Some(n) = next {
                let d = c.dir_to(n).expect("fold hops are adjacent");
                program.shift_out = Some(d);
                program.chained[d.index()] = true;
            }
            programs.push((c, encode_program(&program)));
        }

        let config_latency = match self.strategy {
            ConfigStrategy::UnicastWorms => {
                // One worm per cluster, all in flight together.
                let mut worms = Vec::with_capacity(programs.len());
                for &(c, word) in &programs {
                    let worm = self
                        .noc
                        .inject(self.supervisor, c, vec![word])
                        .map_err(CoreError::Noc)?;
                    worms.push(worm);
                }
                self.noc
                    .run_until_drained(1_000_000)
                    .map_err(CoreError::Noc)?;
                let mut config_latency = 0;
                for (packet, latency) in self.noc.take_delivered() {
                    if !worms.contains(&packet.worm) {
                        continue; // not ours (concurrent traffic)
                    }
                    config_latency = config_latency.max(latency);
                    self.apply_worm(packet.dest, packet.payload[0], tag)?;
                }
                config_latency
            }
            ConfigStrategy::TravelingWorm => {
                // One worm snakes along the fold path, dropping each
                // cluster's program as it arrives; the next leg departs
                // from where the worm stands.
                let mut config_latency = 0;
                let mut at = self.supervisor;
                for &(c, word) in &programs {
                    let worm = self.noc.inject(at, c, vec![word]).map_err(CoreError::Noc)?;
                    self.noc
                        .run_until_drained(1_000_000)
                        .map_err(CoreError::Noc)?;
                    for (packet, latency) in self.noc.take_delivered() {
                        if packet.worm != worm {
                            continue;
                        }
                        config_latency += latency;
                        self.apply_worm(packet.dest, packet.payload[0], tag)?;
                    }
                    at = c;
                }
                config_latency
            }
        };

        // The chain network must now connect every fold hop.
        for w in path.windows(2) {
            debug_assert!(self.fabric.is_chained(w[0], w[1]));
        }

        let outcome = GatherOutcome {
            id,
            worms: path.len(),
            config_latency,
            switch_stores: self.fabric.store_count() - stores_before,
        };
        Ok((fold, outcome))
    }

    /// Applies one delivered configuration word: store the reservation
    /// flag, then the switch registers. A conflict rolls back everything
    /// this gather programmed.
    fn apply_worm(&mut self, dest: Coord, word: u64, tag: RegionTag) -> Result<(), CoreError> {
        let program = decode_program(word);
        if let Err(e) = self.fabric.reserve(dest, tag) {
            self.fabric.release_owner(tag);
            self.index.release_owner(tag);
            return Err(CoreError::Topology(e));
        }
        self.index.set_owner(dest, tag);
        self.fabric
            .apply_program(dest, tag, program)
            .expect("just reserved");
        Ok(())
    }

    /// Relocates an inactive processor to the allocator's preferred free
    /// spot, preserving its adaptive processor intact — library, memory
    /// blocks, and cached objects all move with it (the objects are
    /// *logical*; nothing in the AP depends on die coordinates). This is
    /// the defragmentation §5 says a mesh host must do by hand and the
    /// VLSI processor makes "manageable".
    ///
    /// Returns the gather outcome of the new placement, or leaves the
    /// processor exactly where it was if no better placement exists.
    pub fn relocate(&mut self, id: ProcessorId) -> Result<GatherOutcome, CoreError> {
        let p = self.processor(id)?;
        if p.state != ProcState::Inactive {
            return Err(CoreError::BadState {
                id,
                current: p.state,
                required: ProcState::Inactive,
            });
        }
        let clusters = p.region.len();
        let ring = p.ring;
        let old_region = p.region.clone();
        let tag = RegionTag(id.0);
        // Free the old switches so the allocator sees those clusters too.
        self.fabric.release_owner(tag);
        self.index.release_owner(tag);
        let found =
            vlsi_topology::alloc::find_region(&self.grid, clusters, |c| self.index.is_free(c));
        let region = found.unwrap_or_else(|| old_region.clone());
        match self.program_region(&region, ring, id) {
            Ok((fold, outcome)) => {
                self.telemetry.count("core.relocations", 1);
                self.telemetry
                    .record("core.scaling_latency", outcome.config_latency);
                let p = self.processor_mut(id)?;
                p.region = region;
                p.fold = fold;
                p.config_latency = outcome.config_latency;
                Ok(outcome)
            }
            Err(e) => {
                // Roll back to the original placement.
                let (fold, outcome) = self.program_region(&old_region, ring, id)?;
                let p = self.processor_mut(id)?;
                p.region = old_region;
                p.fold = fold;
                let _ = outcome;
                Err(e)
            }
        }
    }

    /// Relocates every inactive processor (in ID order) to tighten the
    /// free space. Returns how many processors moved.
    pub fn compact(&mut self) -> usize {
        let ids: Vec<ProcessorId> = self
            .processors
            .values()
            .filter(|p| p.state == ProcState::Inactive)
            .map(|p| p.id)
            .collect();
        let mut moved = 0;
        for id in ids {
            let before = self.processor(id).map(|p| p.region.clone()).ok();
            if self.relocate(id).is_ok() {
                if let (Ok(p), Some(b)) = (self.processor(id), before) {
                    if p.region != b {
                        moved += 1;
                    }
                }
            }
        }
        self.telemetry.count("core.compactions", 1);
        moved
    }

    /// Gathers a processor from a resource *count* ("the application then
    /// requests the resources", §1): the allocator finds the squarest free
    /// serpentine-prefix region of `clusters` clusters and gathers it.
    pub fn gather_any(&mut self, clusters: usize) -> Result<GatherOutcome, CoreError> {
        let region =
            vlsi_topology::alloc::find_region(&self.grid, clusters, |c| self.index.is_free(c))
                .ok_or(CoreError::Topology(
                    vlsi_topology::TopologyError::NoLinearPath,
                ))?;
        self.gather(region)
    }

    /// Free-space fragmentation in `[0, 1]` (0 = one request can take all
    /// free clusters).
    pub fn fragmentation(&self) -> f64 {
        vlsi_topology::alloc::fragmentation(&self.grid, |c| self.index.is_free(c))
    }

    /// Releases a processor (must be inactive): every switch it owns
    /// returns to the default state and its clusters become free.
    pub fn release_processor(&mut self, id: ProcessorId) -> Result<(), CoreError> {
        let p = self.processor(id)?;
        if p.state != ProcState::Inactive {
            return Err(CoreError::BadTransition {
                id,
                from: p.state,
                to: ProcState::Release,
            });
        }
        self.fabric.release_owner(RegionTag(id.0));
        self.index.release_owner(RegionTag(id.0));
        self.processors.remove(&id);
        self.telemetry.count("core.releases", 1);
        Ok(())
    }

    /// Fuses two inactive processors into one larger processor. The
    /// regions must be disjoint and their union connected. Both originals
    /// are released; the union is gathered fresh.
    pub fn fuse(&mut self, a: ProcessorId, b: ProcessorId) -> Result<GatherOutcome, CoreError> {
        let ra = self.processor(a)?.region.clone();
        let rb = self.processor(b)?.region.clone();
        if !ra.is_disjoint(&rb) {
            return Err(CoreError::CannotFuse);
        }
        let union = ra.union(&rb);
        if !union.is_connected() {
            return Err(CoreError::CannotFuse);
        }
        self.release_processor(a)?;
        self.release_processor(b)?;
        self.gather(union)
    }

    /// Splits an inactive processor into parts (which must exactly
    /// partition its region). The original is released; each part is
    /// gathered fresh.
    pub fn split(
        &mut self,
        id: ProcessorId,
        parts: &[Region],
    ) -> Result<Vec<GatherOutcome>, CoreError> {
        let region = self.processor(id)?.region.clone();
        // Parts must be pairwise disjoint and cover the region exactly.
        let mut covered = Region::new([]);
        for (i, p) in parts.iter().enumerate() {
            for q in &parts[i + 1..] {
                if !p.is_disjoint(q) {
                    return Err(CoreError::BadSplit);
                }
            }
            covered = covered.union(p);
        }
        if covered != region {
            return Err(CoreError::BadSplit);
        }
        self.release_processor(id)?;
        let mut out = Vec::with_capacity(parts.len());
        for p in parts {
            out.push(self.gather(p.clone())?);
        }
        Ok(out)
    }

    // --- lifecycle -----------------------------------------------------------

    fn transition(&mut self, id: ProcessorId, to: ProcState) -> Result<(), CoreError> {
        let p = self.processor_mut(id)?;
        if !p.state.can_transition(to) {
            return Err(CoreError::BadTransition {
                id,
                from: p.state,
                to,
            });
        }
        p.state = to;
        Ok(())
    }

    /// Invokes a processor: inactive → active (protections set).
    pub fn activate(&mut self, id: ProcessorId) -> Result<(), CoreError> {
        self.transition(id, ProcState::Active)
    }

    /// Clears protections: active → inactive (others may now access its
    /// memory blocks).
    pub fn deactivate(&mut self, id: ProcessorId) -> Result<(), CoreError> {
        self.transition(id, ProcState::Inactive)
    }

    /// Wipes an inactive processor's adaptive processor back to its
    /// just-gathered state — empty library, zeroed memory blocks, cold
    /// object cache — while keeping the already-programmed switches. A
    /// warm pool uses this to hand a region to a new tenant without
    /// paying the configuration worms again.
    pub fn recycle_processor(&mut self, id: ProcessorId) -> Result<(), CoreError> {
        self.require_state(id, ProcState::Inactive)?;
        let cluster = self.grid.cluster();
        let telemetry = self.telemetry.clone();
        let p = self.processor_mut(id)?;
        p.ap = AdaptiveProcessor::with_telemetry(
            ScaledProcessor::ap_config(&p.region, &cluster),
            telemetry,
        );
        Ok(())
    }

    /// Puts an active processor to sleep, optionally with a wake timer.
    pub fn sleep(&mut self, id: ProcessorId, timer: Option<u64>) -> Result<(), CoreError> {
        self.transition(id, ProcState::Sleep)?;
        self.processor_mut(id)?.sleep_timer = timer;
        Ok(())
    }

    /// Wakes a sleeping processor (an event arrived).
    pub fn wake(&mut self, id: ProcessorId) -> Result<(), CoreError> {
        self.transition(id, ProcState::Active)?;
        self.processor_mut(id)?.sleep_timer = None;
        Ok(())
    }

    /// Advances sleep timers by `ticks`; processors whose timer expires
    /// wake. Returns the IDs that woke.
    pub fn tick_timers(&mut self, ticks: u64) -> Vec<ProcessorId> {
        let mut woke = Vec::new();
        for (id, p) in self.processors.iter_mut() {
            if p.state == ProcState::Sleep {
                if let Some(t) = p.sleep_timer {
                    if t <= ticks {
                        p.state = ProcState::Active;
                        p.sleep_timer = None;
                        woke.push(*id);
                    } else {
                        p.sleep_timer = Some(t - ticks);
                    }
                }
            }
        }
        woke
    }

    // --- execution -----------------------------------------------------------

    fn require_state(&self, id: ProcessorId, required: ProcState) -> Result<(), CoreError> {
        let current = self.state(id)?;
        if current != required {
            return Err(CoreError::BadState {
                id,
                current,
                required,
            });
        }
        Ok(())
    }

    /// Installs logical objects into a processor's library. Allowed only
    /// in the inactive state ("storing objects into libraries … are done
    /// in this state", §3.3).
    pub fn install(
        &mut self,
        id: ProcessorId,
        objects: impl IntoIterator<Item = LogicalObject>,
    ) -> Result<(), CoreError> {
        self.require_state(id, ProcState::Inactive)?;
        self.processor_mut(id)?.ap.install(objects)?;
        Ok(())
    }

    /// Configures a streaming datapath on an active processor. The
    /// stream is anything convertible into an `Arc<GlobalConfigStream>`,
    /// so repeat callers (the staged executor) can share one allocation
    /// across configures instead of cloning the elements every time.
    pub fn configure(
        &mut self,
        id: ProcessorId,
        stream: impl Into<Arc<GlobalConfigStream>>,
    ) -> Result<ConfigureOutcome, CoreError> {
        self.require_state(id, ProcState::Active)?;
        Ok(self.processor_mut(id)?.ap.configure(stream)?)
    }

    /// Executes the configured datapath on an active processor.
    pub fn execute(
        &mut self,
        id: ProcessorId,
        tap_limit: u64,
        max_cycles: u64,
    ) -> Result<ExecutionReport, CoreError> {
        self.require_state(id, ProcState::Active)?;
        Ok(self.processor_mut(id)?.ap.execute(tap_limit, max_cycles)?)
    }

    /// Executes the most recently configured datapath of every
    /// processor in `ids` as one struct-of-arrays **region sweep**: each
    /// AP is detached into a flat [`SoaLane`], the lanes are swept
    /// lane-major (sharded into row stripes across the pool
    /// attached via [`Self::set_region_parallel`]), and every AP gets
    /// its memory, register state, and metrics back exactly as a
    /// per-AP [`Self::execute`] loop would have left them.
    ///
    /// Reports come back in `ids` order. All named processors must be
    /// distinct and active. If any lane fails (memory fault or cycle
    /// budget), every AP is still restored first and the first failure
    /// (in `ids` order) is returned — the same error a sequential
    /// `execute` loop would have hit on that processor.
    pub fn execute_batch(
        &mut self,
        ids: &[ProcessorId],
        tap_limit: u64,
        max_cycles: u64,
    ) -> Result<Vec<ExecutionReport>, CoreError> {
        for id in ids {
            self.require_state(*id, ProcState::Active)?;
        }
        // Duplicate check via a sorted copy (the quadratic prefix scan
        // dominated batch setup at 1024 lanes); on detection, re-scan to
        // report the same id the prefix scan would have.
        let mut sorted = ids.to_vec();
        sorted.sort_unstable();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            for (i, id) in ids.iter().enumerate() {
                if ids[..i].contains(id) {
                    return Err(CoreError::DuplicateInBatch(*id));
                }
            }
        }
        // Detach every AP's datapath + memory into a lane.
        let mut lanes: Vec<SoaLane> = Vec::with_capacity(ids.len());
        for id in ids {
            match self.processor_mut(*id)?.ap.begin_batch() {
                Ok(lane) => lanes.push(lane),
                Err(e) => {
                    // Roll already-detached lanes back before failing so
                    // no AP is left without its memory.
                    for (done, lane) in ids.iter().zip(lanes.drain(..)) {
                        let _ = self.processor_mut(*done)?.ap.finish_batch(lane);
                    }
                    return Err(e.into());
                }
            }
        }
        // One region sweep over all lanes.
        let pool = Arc::clone(&self.region_pool);
        region::sweep_lanes(&pool, &mut lanes, tap_limit, max_cycles);
        // Reattach in processor order; surface the first failure only
        // after every AP has its state back.
        let mut reports = Vec::with_capacity(ids.len());
        let mut first_err: Option<CoreError> = None;
        for (id, lane) in ids.iter().zip(lanes) {
            match self.processor_mut(*id)?.ap.finish_batch(lane) {
                Ok(r) => reports.push(r),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e.into());
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(reports),
        }
    }

    /// Scalar (virtual-hardware) execution on an active processor.
    pub fn execute_scalar(
        &mut self,
        id: ProcessorId,
        stream: &GlobalConfigStream,
    ) -> Result<std::collections::HashMap<ObjectId, Word>, CoreError> {
        self.require_state(id, ProcState::Active)?;
        Ok(self.processor_mut(id)?.ap.execute_scalar(stream)?)
    }

    // --- mailbox (inter-processor memory access) ----------------------------

    /// Writes words into `id`'s memory block — the path a preceding
    /// processor uses to hand data to a following processor (Figure 7(d)).
    /// Allowed only while the target is inactive; active and sleeping
    /// processors are read/write protected.
    pub fn write_mailbox(
        &mut self,
        id: ProcessorId,
        block: usize,
        addr: u64,
        words: &[Word],
    ) -> Result<(), CoreError> {
        let state = self.state(id)?;
        if !state.others_may_access_memory() {
            return Err(CoreError::ProtectionViolation { id, state });
        }
        let p = self.processor_mut(id)?;
        let mem =
            p.ap.memory_mut(block)
                .ok_or(CoreError::UnknownProcessor(id))?;
        mem.store_slice(addr, words)?;
        Ok(())
    }

    /// Chip-wide metrics: the merged counters of every live processor's
    /// AP, plus the NoC and switch-fabric totals.
    pub fn metrics(&self) -> ChipMetrics {
        let mut ap = vlsi_ap::ApMetrics::default();
        for p in self.processors.values() {
            ap = ap.merge(&p.ap.metrics());
        }
        ChipMetrics {
            live_processors: self.processors.len(),
            ap,
            noc_cycles: self.noc.stats().cycles,
            noc_worms_delivered: self.noc.stats().worms_delivered,
            noc_link_crossings: self.noc.stats().link_crossings,
            switch_stores: self.fabric.store_count(),
        }
    }

    /// Renders the chip's floorplan as text: one character per cluster —
    /// `.` free, `#` defective, `a`–`z`/`A`–`Z` the owning processor
    /// (by ID modulo 52). For examples and debugging.
    pub fn layout_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for y in 0..self.grid.height() {
            for x in 0..self.grid.width() {
                let c = Coord::new(x, y);
                let ch = if self.index.is_defective(c) {
                    '#'
                } else {
                    match self.index.owner(c) {
                        None => '.',
                        Some(tag) => {
                            let i = (tag.0 as usize) % 52;
                            if i < 26 {
                                (b'a' + i as u8) as char
                            } else {
                                (b'A' + (i - 26) as u8) as char
                            }
                        }
                    }
                };
                out.push(ch);
            }
            writeln!(out).unwrap();
        }
        out
    }

    /// Sends words into `id`'s memory block *through the router network*:
    /// the data travels as a worm from `from`'s home cluster (or the
    /// supervisor when `from` is `None`) to `id`'s home cluster and lands
    /// in the mailbox on arrival. This is the Figure 7(c)/(e) path — the
    /// same routers that carry configuration carry inter-processor data —
    /// and it returns the worm's delivery latency in NoC cycles.
    ///
    /// The same protection rule as [`write_mailbox`](Self::write_mailbox)
    /// applies: the target must be inactive.
    pub fn send_message(
        &mut self,
        from: Option<ProcessorId>,
        to: ProcessorId,
        block: usize,
        addr: u64,
        words: &[Word],
    ) -> Result<u64, CoreError> {
        let state = self.state(to)?;
        if !state.others_may_access_memory() {
            return Err(CoreError::ProtectionViolation { id: to, state });
        }
        let src = match from {
            Some(f) => self.processor(f)?.fold.path()[0],
            None => self.supervisor,
        };
        let dest = self.processor(to)?.fold.path()[0];
        debug_assert!(self.noc.is_idle(), "chip ops are synchronous");
        let mut payload = Vec::with_capacity(words.len() + 2);
        payload.push(block as u64);
        payload.push(addr);
        payload.extend(words.iter().map(|w| w.0));
        let worm = self
            .noc
            .inject(src, dest, payload)
            .map_err(CoreError::Noc)?;
        self.noc
            .run_until_drained(1_000_000)
            .map_err(CoreError::Noc)?;
        let mut latency = 0;
        for (packet, l) in self.noc.take_delivered() {
            if packet.worm != worm {
                continue;
            }
            latency = l;
            let block = packet.payload[0] as usize;
            let addr = packet.payload[1];
            let words: Vec<Word> = packet.payload[2..].iter().map(|&w| Word(w)).collect();
            let p = self.processor_mut(to)?;
            let mem =
                p.ap.memory_mut(block)
                    .ok_or(CoreError::UnknownProcessor(to))?;
            mem.store_slice(addr, &words)?;
        }
        Ok(latency)
    }

    /// Reads words from `id`'s memory block under the same protection
    /// rule as [`write_mailbox`](Self::write_mailbox).
    pub fn read_mailbox(
        &mut self,
        id: ProcessorId,
        block: usize,
        addr: u64,
        len: usize,
    ) -> Result<Vec<Word>, CoreError> {
        let state = self.state(id)?;
        if !state.others_may_access_memory() {
            return Err(CoreError::ProtectionViolation { id, state });
        }
        let p = self.processor_mut(id)?;
        let mem =
            p.ap.memory_mut(block)
                .ok_or(CoreError::UnknownProcessor(id))?;
        Ok(mem.load_slice(addr, len)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip() -> VlsiChip {
        VlsiChip::new(8, 8, Cluster::default())
    }

    #[test]
    fn gather_programs_switches_via_worms() {
        let mut c = chip();
        let out = c.gather(Region::rect(Coord::new(2, 2), 2, 2)).unwrap();
        assert_eq!(out.worms, 4);
        assert!(out.config_latency > 0);
        assert!(out.switch_stores >= 8, "reserve + program per cluster");
        let p = c.processor(out.id).unwrap();
        assert_eq!(p.state, ProcState::Inactive);
        assert_eq!(p.ap.config().compute_objects, 16);
        // Fold recoverable from fabric state.
        let start = p.fold.path()[0];
        assert_eq!(
            c.fabric().trace_shift_path(start, 10),
            p.fold.path().to_vec()
        );
    }

    #[test]
    fn gather_ring_closes() {
        let mut c = chip();
        let out = c.gather_ring(Region::rect(Coord::new(0, 0), 4, 2)).unwrap();
        let p = c.processor(out.id).unwrap();
        assert!(p.ring);
        assert!(p.fold.closes_as_ring());
        // The trace loops: length equals the region size.
        let start = p.fold.path()[0];
        assert_eq!(c.fabric().trace_shift_path(start, 100).len(), 8);
    }

    #[test]
    fn overlapping_gather_conflicts() {
        let mut c = chip();
        let _a = c.gather(Region::rect(Coord::new(0, 0), 2, 2)).unwrap();
        let err = c.gather(Region::rect(Coord::new(1, 1), 2, 2)).unwrap_err();
        assert!(matches!(err, CoreError::Topology(_)), "{err}");
        // The failed gather rolled back: the free count reflects only the
        // first processor (4 clusters of 64).
        assert_eq!(c.free_clusters(), 60);
    }

    #[test]
    fn defective_cluster_rejected() {
        let mut c = chip();
        c.mark_defective(Coord::new(1, 1));
        let err = c.gather(Region::rect(Coord::new(0, 0), 2, 2)).unwrap_err();
        assert_eq!(err, CoreError::DefectiveCluster(Coord::new(1, 1)));
        // A region avoiding the defect gathers fine.
        c.gather(Region::rect(Coord::new(2, 0), 2, 2)).unwrap();
    }

    #[test]
    fn stuck_switch_becomes_a_defect_and_blocks_gather() {
        let mut c = chip();
        c.mark_switch_stuck(Coord::new(1, 1));
        assert!(c.is_switch_stuck(Coord::new(1, 1)));
        assert!(c.is_defective(Coord::new(1, 1)));
        // The fault report flows into allocation: a region over the stuck
        // switch is rejected typed, one around it gathers fine.
        let err = c.gather(Region::rect(Coord::new(0, 0), 2, 2)).unwrap_err();
        assert_eq!(err, CoreError::DefectiveCluster(Coord::new(1, 1)));
        c.gather(Region::rect(Coord::new(2, 0), 2, 2)).unwrap();
        assert_eq!(c.usable_clusters(), 63);
    }

    #[test]
    fn lifecycle_transitions() {
        let mut c = chip();
        let id = c.gather(Region::rect(Coord::new(0, 0), 2, 2)).unwrap().id;
        assert_eq!(c.state(id).unwrap(), ProcState::Inactive);
        c.activate(id).unwrap();
        assert_eq!(c.state(id).unwrap(), ProcState::Active);
        c.sleep(id, Some(10)).unwrap();
        assert_eq!(c.state(id).unwrap(), ProcState::Sleep);
        c.wake(id).unwrap();
        c.deactivate(id).unwrap();
        c.release_processor(id).unwrap();
        assert!(c.processor(id).is_err());
        assert_eq!(c.free_clusters(), 64);
    }

    #[test]
    fn illegal_transitions_rejected() {
        let mut c = chip();
        let id = c.gather(Region::rect(Coord::new(0, 0), 1, 1)).unwrap().id;
        // Inactive cannot sleep.
        assert!(matches!(
            c.sleep(id, None),
            Err(CoreError::BadTransition { .. })
        ));
        c.activate(id).unwrap();
        // Active cannot be released directly.
        assert!(matches!(
            c.release_processor(id),
            Err(CoreError::BadTransition { .. })
        ));
    }

    #[test]
    fn sleep_timer_wakes() {
        let mut c = chip();
        let id = c.gather(Region::rect(Coord::new(0, 0), 1, 1)).unwrap().id;
        c.activate(id).unwrap();
        c.sleep(id, Some(5)).unwrap();
        assert!(c.tick_timers(3).is_empty());
        assert_eq!(c.tick_timers(2), vec![id]);
        assert_eq!(c.state(id).unwrap(), ProcState::Active);
        // Untimed sleepers only wake on events.
        c.sleep(id, None).unwrap();
        assert!(c.tick_timers(1000).is_empty());
        assert_eq!(c.state(id).unwrap(), ProcState::Sleep);
    }

    #[test]
    fn mailbox_protection() {
        let mut c = chip();
        let id = c.gather(Region::rect(Coord::new(0, 0), 1, 1)).unwrap().id;
        // Inactive: writable.
        c.write_mailbox(id, 0, 0, &[Word(42)]).unwrap();
        assert_eq!(c.read_mailbox(id, 0, 0, 1).unwrap(), vec![Word(42)]);
        // Active: protected.
        c.activate(id).unwrap();
        assert!(matches!(
            c.write_mailbox(id, 0, 0, &[Word(1)]),
            Err(CoreError::ProtectionViolation { .. })
        ));
        assert!(matches!(
            c.read_mailbox(id, 0, 0, 1),
            Err(CoreError::ProtectionViolation { .. })
        ));
    }

    #[test]
    fn fuse_and_split() {
        let mut c = chip();
        let a = c.gather(Region::rect(Coord::new(0, 0), 2, 2)).unwrap().id;
        let b = c.gather(Region::rect(Coord::new(2, 0), 2, 2)).unwrap().id;
        let fused = c.fuse(a, b).unwrap();
        let p = c.processor(fused.id).unwrap();
        assert_eq!(p.scale(), 8);
        assert_eq!(p.ap.config().compute_objects, 32);
        // Split back into two halves.
        let parts = [
            Region::rect(Coord::new(0, 0), 2, 2),
            Region::rect(Coord::new(2, 0), 2, 2),
        ];
        let out = c.split(fused.id, &parts).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(c.processors().count(), 2);
    }

    #[test]
    fn fuse_rejects_disconnected_or_overlapping() {
        let mut c = chip();
        let a = c.gather(Region::rect(Coord::new(0, 0), 2, 2)).unwrap().id;
        let b = c.gather(Region::rect(Coord::new(4, 4), 2, 2)).unwrap().id;
        assert_eq!(c.fuse(a, b).unwrap_err(), CoreError::CannotFuse);
        // Both survive the failed fuse.
        assert_eq!(c.processors().count(), 2);
    }

    #[test]
    fn split_requires_exact_partition() {
        let mut c = chip();
        let id = c.gather(Region::rect(Coord::new(0, 0), 2, 2)).unwrap().id;
        let bad = [Region::rect(Coord::new(0, 0), 2, 1)]; // misses half
        assert_eq!(c.split(id, &bad).unwrap_err(), CoreError::BadSplit);
    }

    #[test]
    fn install_requires_inactive_and_execute_requires_active() {
        use vlsi_object::{LocalConfig, Operation};
        let mut c = chip();
        let id = c.gather(Region::rect(Coord::new(0, 0), 2, 2)).unwrap().id;
        let objs = vec![
            LogicalObject::compute(
                ObjectId(0),
                LocalConfig::with_imm(Operation::Const, Word(5)),
            ),
            LogicalObject::compute(
                ObjectId(1),
                LocalConfig::with_imm(Operation::AddImm, Word(3)),
            ),
        ];
        c.install(id, objs.clone()).unwrap();
        let stream: GlobalConfigStream = [vlsi_object::GlobalConfigElement::unary(
            ObjectId(1),
            ObjectId(0),
        )]
        .into_iter()
        .collect();
        // Configure while inactive: rejected.
        assert!(matches!(
            c.configure(id, stream.clone()),
            Err(CoreError::BadState { .. })
        ));
        c.activate(id).unwrap();
        // Install while active: rejected.
        assert!(matches!(
            c.install(id, objs),
            Err(CoreError::BadState { .. })
        ));
        c.configure(id, stream).unwrap();
        let report = c.execute(id, 1, 100_000).unwrap();
        assert_eq!(report.taps[&ObjectId(1)], vec![Word(8)]);
    }

    /// Gathers `n` 2×2 processors, installs a distinct const→add kernel
    /// in each, and activates + configures them all.
    fn batch_ready_chip(n: usize, threads: usize) -> (VlsiChip, Vec<ProcessorId>) {
        use vlsi_object::{LocalConfig, Operation};
        let mut c = chip();
        if threads > 1 {
            c.set_region_parallel(Pool::new(threads));
        }
        let mut ids = Vec::new();
        for k in 0..n {
            let id = c.gather_any(4).unwrap().id;
            c.install(
                id,
                vec![
                    LogicalObject::compute(
                        ObjectId(0),
                        LocalConfig::with_imm(Operation::Const, Word(10 + k as u64)),
                    ),
                    LogicalObject::compute(
                        ObjectId(1),
                        LocalConfig::with_imm(Operation::AddImm, Word(k as u64)),
                    ),
                ],
            )
            .unwrap();
            c.activate(id).unwrap();
            let stream: GlobalConfigStream = [vlsi_object::GlobalConfigElement::unary(
                ObjectId(1),
                ObjectId(0),
            )]
            .into_iter()
            .collect();
            c.configure(id, stream).unwrap();
            ids.push(id);
        }
        (c, ids)
    }

    #[test]
    fn execute_batch_matches_per_ap_loop() {
        let (mut serial, ids_s) = batch_ready_chip(6, 1);
        let per_ap: Vec<_> = ids_s
            .iter()
            .map(|&id| serial.execute(id, 1, 100_000).unwrap())
            .collect();
        for threads in [1usize, 2, 8] {
            let (mut batch, ids_b) = batch_ready_chip(6, threads);
            let reports = batch.execute_batch(&ids_b, 1, 100_000).unwrap();
            assert_eq!(reports.len(), per_ap.len());
            for (k, (a, b)) in per_ap.iter().zip(&reports).enumerate() {
                assert_eq!(a.cycles, b.cycles, "proc {k} cycles at {threads}t");
                assert_eq!(a.taps, b.taps, "proc {k} taps at {threads}t");
                assert_eq!(a.firings, b.firings, "proc {k} firings");
                assert_eq!(a.release_order, b.release_order, "proc {k} release");
            }
            assert_eq!(
                serial.metrics().ap,
                batch.metrics().ap,
                "merged AP metrics identical at {threads} threads"
            );
        }
    }

    #[test]
    fn execute_batch_rejects_duplicates_and_bad_state() {
        let (mut c, ids) = batch_ready_chip(2, 1);
        let dup = [ids[0], ids[1], ids[0]];
        assert_eq!(
            c.execute_batch(&dup, 1, 100_000).unwrap_err(),
            CoreError::DuplicateInBatch(ids[0])
        );
        c.deactivate(ids[1]).unwrap();
        assert!(matches!(
            c.execute_batch(&ids, 1, 100_000).unwrap_err(),
            CoreError::BadState { .. }
        ));
        // The duplicate/bad-state probes must not have stranded memory:
        // the healthy processor still executes normally.
        let r = c.execute(ids[0], 1, 100_000).unwrap();
        assert_eq!(r.taps[&ObjectId(1)], vec![Word(10)]);
    }

    #[test]
    fn execute_batch_surfaces_lane_timeouts_after_restoring_all() {
        let (mut c, ids) = batch_ready_chip(3, 1);
        // A zero cycle budget times out every lane, the same typed error
        // a sequential execute loop would hit first.
        let err = c.execute_batch(&ids, 1, 0).unwrap_err();
        assert!(
            matches!(
                err,
                CoreError::Ap(vlsi_ap::ApError::ExecutionTimeout { .. })
            ),
            "{err}"
        );
        // Every AP got its memory back and still runs.
        for &id in &ids {
            c.execute(id, 1, 100_000).unwrap();
        }
    }

    #[test]
    fn gather_any_allocates_by_count() {
        let mut c = chip();
        // Square request.
        let a = c.gather_any(16).unwrap();
        assert_eq!(c.processor(a.id).unwrap().scale(), 16);
        // Awkward prime count still gathers (serpentine prefix).
        let b = c.gather_any(7).unwrap();
        assert_eq!(c.processor(b.id).unwrap().scale(), 7);
        assert_eq!(c.free_clusters(), 64 - 23);
        // Requests larger than the remaining space fail cleanly.
        assert!(c.gather_any(64).is_err());
    }

    #[test]
    fn fragmentation_rises_with_scattered_allocations() {
        let mut c = chip();
        assert_eq!(c.fragmentation(), 0.0);
        // Pin the chip's middle, splitting free space.
        c.gather(Region::rect(Coord::new(3, 0), 2, 8)).unwrap();
        assert!(c.fragmentation() > 0.0);
    }

    #[test]
    fn layout_text_shows_ownership() {
        let mut c = VlsiChip::new(4, 2, Cluster::default());
        let id = c.gather(Region::rect(Coord::new(0, 0), 2, 2)).unwrap().id;
        c.mark_defective(Coord::new(3, 0));
        let text = c.layout_text();
        let ch = (b'a' + (id.0 % 52) as u8) as char;
        assert_eq!(text, format!("{ch}{ch}.#\n{ch}{ch}..\n"));
    }

    #[test]
    fn traveling_worm_gathers_identically() {
        // Both strategies end with the same switch state; only the
        // configuration latency differs.
        let mut a = chip();
        let ua = a
            .gather_with(
                Region::rect(Coord::new(5, 5), 3, 3),
                ConfigStrategy::UnicastWorms,
            )
            .unwrap();
        let mut b = chip();
        let ub = b
            .gather_with(
                Region::rect(Coord::new(5, 5), 3, 3),
                ConfigStrategy::TravelingWorm,
            )
            .unwrap();
        let pa = a.processor(ua.id).unwrap();
        let pb = b.processor(ub.id).unwrap();
        assert_eq!(pa.fold.path(), pb.fold.path());
        for &c in pa.fold.path() {
            assert_eq!(
                a.fabric().state(c).chained,
                b.fabric().state(c).chained,
                "switch mismatch at {c}"
            );
        }
        // Far regions: the traveling worm pays the approach once, the
        // unicast strategy pays it per worm — but unicast pipelines, so
        // its *max* latency is lower. Both must be nonzero and distinct
        // accounting.
        assert!(ua.config_latency > 0 && ub.config_latency > 0);
        assert!(
            ub.config_latency > ua.config_latency,
            "serial worm is slower end-to-end"
        );
        // Everything still executes on the traveling-worm processor.
        b.activate(ub.id).unwrap();
        b.deactivate(ub.id).unwrap();
        b.release_processor(ub.id).unwrap();
    }

    #[test]
    fn traveling_worm_conflict_rolls_back() {
        let mut c = chip();
        c.gather(Region::rect(Coord::new(2, 2), 2, 2)).unwrap();
        let before = c.free_clusters();
        let err = c
            .gather_with(
                Region::rect(Coord::new(0, 0), 4, 4),
                ConfigStrategy::TravelingWorm,
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::Topology(_)));
        assert_eq!(c.free_clusters(), before);
    }

    #[test]
    fn relocation_preserves_processor_state() {
        use vlsi_object::{LocalConfig, Operation};
        let mut c = chip();
        // Pin the top-left corner, then gather a worker further out.
        let pin = c.gather(Region::rect(Coord::new(0, 0), 2, 2)).unwrap().id;
        let id = c.gather(Region::rect(Coord::new(4, 4), 2, 2)).unwrap().id;
        // Give the worker observable state: library + memory contents.
        c.install(
            id,
            [LogicalObject::compute(
                ObjectId(1),
                LocalConfig::with_imm(Operation::Const, Word(9)),
            )],
        )
        .unwrap();
        c.write_mailbox(id, 0, 7, &[Word(0xBEEF)]).unwrap();
        let old_region = c.processor(id).unwrap().region.clone();
        // Free the pin so the preferred (top-left) placement opens up.
        c.release_processor(pin).unwrap();
        c.relocate(id).unwrap();
        let p = c.processor(id).unwrap();
        assert_ne!(p.region, old_region, "processor should have moved");
        // State travelled with it.
        assert_eq!(c.read_mailbox(id, 0, 7, 1).unwrap(), vec![Word(0xBEEF)]);
        assert!(c.processor(id).unwrap().ap.library().contains(ObjectId(1)));
        // Fold and switches consistent at the new site.
        let p = c.processor(id).unwrap();
        let traced = c
            .fabric()
            .trace_shift_path(p.fold.path()[0], p.fold.len() + 2);
        assert_eq!(traced, p.fold.path().to_vec());
    }

    #[test]
    fn relocate_requires_inactive() {
        let mut c = chip();
        let id = c.gather(Region::rect(Coord::new(0, 0), 2, 2)).unwrap().id;
        c.activate(id).unwrap();
        assert!(matches!(c.relocate(id), Err(CoreError::BadState { .. })));
    }

    #[test]
    fn compact_reduces_fragmentation() {
        let mut c = chip();
        // Scatter processors, then free some to fragment the chip.
        let ids: Vec<_> = (0..4u16)
            .map(|i| {
                c.gather(Region::rect(Coord::new(i * 2, i * 2), 2, 2))
                    .unwrap()
                    .id
            })
            .collect();
        c.release_processor(ids[0]).unwrap();
        c.release_processor(ids[2]).unwrap();
        let before = c.fragmentation();
        let moved = c.compact();
        let after = c.fragmentation();
        assert!(moved > 0, "compaction should move someone");
        assert!(after <= before, "fragmentation {after} !<= {before}");
    }

    #[test]
    fn noc_messages_land_in_the_mailbox() {
        let mut c = chip();
        let a = c.gather(Region::rect(Coord::new(0, 0), 2, 2)).unwrap().id;
        let b = c.gather(Region::rect(Coord::new(6, 6), 2, 2)).unwrap().id;
        // Supervisor → b.
        let lat_far = c
            .send_message(None, b, 0, 5, &[Word(11), Word(22)])
            .unwrap();
        assert_eq!(
            c.read_mailbox(b, 0, 5, 2).unwrap(),
            vec![Word(11), Word(22)]
        );
        // a → b crosses the chip; a → a-neighbourhood is cheaper.
        let lat_near = c.send_message(Some(b), b, 0, 9, &[Word(3)]).unwrap();
        assert!(lat_far > lat_near);
        // Protection: active targets reject messages.
        c.activate(a).unwrap();
        assert!(matches!(
            c.send_message(None, a, 0, 0, &[Word(1)]),
            Err(CoreError::ProtectionViolation { .. })
        ));
    }

    #[test]
    fn admission_probes_track_chip_state() {
        let mut c = chip();
        assert_eq!(c.total_clusters(), 64);
        assert_eq!(c.usable_clusters(), 64);
        assert_eq!(c.largest_gatherable(), 64);
        // A centre pin splits free space: the probe drops below the free
        // count while the count itself only shrinks by the pin.
        let pin = c.gather(Region::rect(Coord::new(3, 0), 2, 8)).unwrap().id;
        assert_eq!(c.free_clusters(), 48);
        assert!(c.largest_gatherable() < 48, "{}", c.largest_gatherable());
        assert_eq!(c.processor_at(Coord::new(3, 0)), Some(pin));
        assert_eq!(c.processor_at(Coord::new(0, 0)), None);
        // Defects shrink the usable ceiling.
        c.mark_defective(Coord::new(0, 0));
        assert_eq!(c.defective_count(), 1);
        assert_eq!(c.usable_clusters(), 63);
    }

    #[test]
    fn largest_gatherable_edge_cases_match_exhaustive_scan() {
        // Oracle: try every candidate size from the free count down — no
        // monotonicity assumption, unlike the binary-search probe.
        fn exhaustive(c: &VlsiChip) -> usize {
            let free = |k: Coord| c.processor_at(k).is_none() && !c.is_defective(k);
            (1..=c.free_clusters())
                .rev()
                .find(|&n| vlsi_topology::alloc::find_region(c.grid(), n, free).is_some())
                .unwrap_or(0)
        }

        // Fully-defective die: nothing gatherable at all.
        let mut dead = chip();
        for y in 0..8 {
            for x in 0..8 {
                dead.mark_defective(Coord::new(x, y));
            }
        }
        assert_eq!(dead.largest_gatherable(), 0);
        assert_eq!(exhaustive(&dead), 0);

        // Zero free clusters: the whole die is owned, none defective.
        let mut full = chip();
        full.gather(Region::rect(Coord::new(0, 0), 8, 8)).unwrap();
        assert_eq!(full.free_clusters(), 0);
        assert_eq!(full.largest_gatherable(), 0);
        assert_eq!(exhaustive(&full), 0);

        // Exactly one cluster left healthy: the probe finds exactly it.
        let mut one = chip();
        for y in 0..8 {
            for x in 0..8 {
                if (x, y) != (5, 2) {
                    one.mark_defective(Coord::new(x, y));
                }
            }
        }
        assert_eq!(one.largest_gatherable(), 1);
        assert_eq!(exhaustive(&one), 1);

        // A fragmented mid-state (pinned column + scattered defects)
        // agrees with the oracle too.
        let mut frag = chip();
        frag.gather(Region::rect(Coord::new(3, 0), 2, 8)).unwrap();
        frag.mark_defective(Coord::new(0, 0));
        frag.mark_defective(Coord::new(7, 7));
        frag.mark_defective(Coord::new(1, 4));
        assert_eq!(frag.largest_gatherable(), exhaustive(&frag));
        assert!(frag.largest_gatherable() > 0);
    }

    #[test]
    fn bigger_regions_cost_more_configuration_latency() {
        let mut small_chip = chip();
        let small = small_chip
            .gather(Region::rect(Coord::new(0, 0), 2, 2))
            .unwrap();
        let mut big_chip = chip();
        let big = big_chip
            .gather(Region::rect(Coord::new(0, 0), 6, 6))
            .unwrap();
        assert!(big.config_latency > small.config_latency);
        assert!(big.switch_stores > small.switch_stores);
    }
}

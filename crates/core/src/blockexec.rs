//! Executing a basic-block-partitioned program across processors.
//!
//! Figure 7(b)–(d): each basic block becomes its own small processor;
//! the *preceding* processor writes the following block's live-in
//! variables into that processor's memory blocks while it is inactive,
//! then activates it; the condition computed by a branching block decides
//! which arm is activated. "By isolating the application to basic blocks
//! that are independent of each other regarding their control flow, this
//! example does not have the negative impact [of control flow on
//! reconfiguration]."
//!
//! [`BlockExecutor`] performs exactly that choreography on a [`VlsiChip`]:
//!
//! 1. **deploy** — gather one region per block, compile each block to a
//!    datapath whose live-ins are *memory loads* (one memory block per
//!    variable, address 0 — the mailbox), install the objects;
//! 2. **run** — walk the block graph: write the current block's live-ins
//!    into its mailboxes (only legal while it is inactive), activate it,
//!    configure + execute its datapath, read the output/condition taps,
//!    deactivate it, and follow the terminator.

use crate::chip::VlsiChip;
use crate::error::CoreError;
use crate::scaled::ProcessorId;
use std::collections::HashMap;
use vlsi_object::{
    GlobalConfigElement, GlobalConfigStream, LocalConfig, LogicalObject, ObjectId, Operation, Word,
};
use vlsi_workloads::program::{BasicBlock, BlockDatapath, Terminator};

/// A block's executable deployment.
#[derive(Clone, Debug)]
struct DeployedBlock {
    proc: ProcessorId,
    stream: GlobalConfigStream,
    /// live-in var → memory-block index holding its mailbox word.
    input_blocks: Vec<(String, usize)>,
    /// live-out var → tap (probe) object.
    output_taps: Vec<(String, ObjectId)>,
    /// condition tap, if the block branches.
    cond_tap: Option<ObjectId>,
}

/// Statistics of one partitioned-program run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Blocks executed (activations).
    pub blocks_executed: u64,
    /// Mailbox words written between processors.
    pub mailbox_writes: u64,
    /// Total datapath execution cycles across blocks.
    pub exec_cycles: u64,
    /// Total configuration cycles across blocks.
    pub config_cycles: u64,
}

/// Pipelining summary of a multi-dataset run (Figure 7(d)).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PipelineReport {
    /// Datasets pushed through the block pipeline.
    pub datasets: usize,
    /// Total cycles if datasets run strictly one after another.
    pub sequential_cycles: u64,
    /// Makespan when each block processor overlaps across datasets.
    pub pipelined_cycles: u64,
    /// `sequential / pipelined`.
    pub speedup: f64,
}

/// The (block index, execution cycles) sequence of one run.
type BlockTrace = Vec<(usize, u64)>;

/// Executes partitioned programs on a chip.
#[derive(Debug)]
pub struct BlockExecutor {
    blocks: Vec<BasicBlock>,
    deployed: Vec<Option<DeployedBlock>>,
}

impl BlockExecutor {
    /// Deploys `blocks` onto `chip`, gathering one 4-cluster processor per
    /// non-empty block wherever the allocator finds free clusters.
    pub fn deploy(
        chip: &mut VlsiChip,
        blocks: Vec<BasicBlock>,
    ) -> Result<BlockExecutor, CoreError> {
        let mut deployed = Vec::with_capacity(blocks.len());
        for block in &blocks {
            if block.assigns.is_empty() && block.cond.is_none() {
                deployed.push(None);
                continue;
            }
            let id = chip.gather_any(4)?.id;
            let dp = BlockDatapath::compile(block);
            let lowered = lower_block(&dp);
            chip.install(id, lowered.objects)?;
            deployed.push(Some(DeployedBlock {
                proc: id,
                stream: lowered.stream,
                input_blocks: lowered.input_blocks,
                output_taps: lowered.output_taps,
                cond_tap: lowered.cond_tap,
            }));
        }
        Ok(BlockExecutor { blocks, deployed })
    }

    /// Runs the program for one input environment; returns the final
    /// environment and run statistics.
    pub fn run(
        &self,
        chip: &mut VlsiChip,
        inputs: &HashMap<String, i64>,
    ) -> Result<(HashMap<String, i64>, RunStats), CoreError> {
        let (env, stats, _) = self.run_traced(chip, inputs)?;
        Ok((env, stats))
    }

    /// Runs the program for a sequence of input datasets and reports the
    /// pipelining opportunity of Figure 7(d): because every block is its
    /// own processor, dataset `i + 1` may enter a block as soon as dataset
    /// `i` has left it. Results are computed exactly (sequentially); the
    /// pipelined makespan is derived from the measured per-block cycles by
    /// a list schedule over block occupancy.
    pub fn run_pipelined(
        &self,
        chip: &mut VlsiChip,
        datasets: &[HashMap<String, i64>],
    ) -> Result<(Vec<HashMap<String, i64>>, PipelineReport), CoreError> {
        let mut results = Vec::with_capacity(datasets.len());
        let mut traces: Vec<BlockTrace> = Vec::with_capacity(datasets.len());
        let mut sequential = 0u64;
        for inputs in datasets {
            let (env, stats, trace) = self.run_traced(chip, inputs)?;
            sequential += stats.exec_cycles;
            traces.push(trace);
            results.push(env);
        }
        // List schedule: each block is a resource; a dataset's stage k
        // starts when both its previous stage and the block are free.
        let mut block_free: HashMap<usize, u64> = HashMap::new();
        let mut makespan = 0u64;
        for trace in &traces {
            let mut t = 0u64;
            for &(block, cycles) in trace {
                let free = block_free.get(&block).copied().unwrap_or(0);
                let start = t.max(free);
                let end = start + cycles;
                block_free.insert(block, end);
                t = end;
            }
            makespan = makespan.max(t);
        }
        let report = PipelineReport {
            datasets: datasets.len(),
            sequential_cycles: sequential,
            pipelined_cycles: makespan,
            speedup: if makespan == 0 {
                1.0
            } else {
                sequential as f64 / makespan as f64
            },
        };
        Ok((results, report))
    }

    /// `run`, additionally returning the executed (block, exec-cycles)
    /// trace.
    fn run_traced(
        &self,
        chip: &mut VlsiChip,
        inputs: &HashMap<String, i64>,
    ) -> Result<(HashMap<String, i64>, RunStats, BlockTrace), CoreError> {
        // Re-run `run`'s walk, keeping the per-block cycle trace.
        let mut env = inputs.clone();
        let mut stats = RunStats::default();
        let mut trace = Vec::new();
        let mut cur = 0usize;
        let mut steps = 0usize;
        loop {
            steps += 1;
            assert!(steps <= self.blocks.len() + 1);
            let block = &self.blocks[cur];
            let mut cond_value = None;
            if let Some(d) = &self.deployed[cur] {
                for (var, mem_block) in &d.input_blocks {
                    let v = env.get(var).copied().unwrap_or(0);
                    chip.write_mailbox(d.proc, *mem_block, 0, &[Word::from_i64(v)])?;
                    stats.mailbox_writes += 1;
                }
                chip.activate(d.proc)?;
                let cfg = chip.configure(d.proc, d.stream.clone())?;
                stats.config_cycles += cfg.cycles;
                let report = chip.execute(d.proc, 1, 1_000_000)?;
                stats.exec_cycles += report.cycles;
                stats.blocks_executed += 1;
                trace.push((cur, report.cycles));
                for (var, tap) in &d.output_taps {
                    let vals =
                        report
                            .taps
                            .get(tap)
                            .filter(|v| !v.is_empty())
                            .ok_or(CoreError::Ap(vlsi_ap::ApError::ExecutionTimeout {
                                cycles: report.cycles,
                            }))?;
                    env.insert(var.clone(), vals[0].as_i64());
                }
                if let Some(tap) = d.cond_tap {
                    cond_value = Some(report.taps[&tap][0].as_i64());
                }
                chip.deactivate(d.proc)?;
            }
            match &block.terminator {
                Terminator::End => break,
                Terminator::Jump(n) => cur = *n,
                Terminator::Branch {
                    then_block,
                    else_block,
                } => {
                    let c = cond_value.expect("branching block computes a condition");
                    cur = if c != 0 { *then_block } else { *else_block };
                }
            }
        }
        Ok((env, stats, trace))
    }

    /// The processor gathered for block `i`, if the block is non-empty.
    pub fn processor_of(&self, i: usize) -> Option<ProcessorId> {
        self.deployed
            .get(i)
            .and_then(|d| d.as_ref())
            .map(|d| d.proc)
    }

    /// Number of processors deployed.
    pub fn processor_count(&self) -> usize {
        self.deployed.iter().flatten().count()
    }
}

/// Lowers a compiled block datapath to its AP form:
///
/// * every live-in `Const` becomes an *addressed memory load* from its own
///   mailbox memory block (address 0), driven by a zero-address constant;
/// * every live-out (and the condition) gains a `Pass` probe so its value
///   is always observable as a tap.
struct LoweredBlock {
    objects: Vec<LogicalObject>,
    stream: GlobalConfigStream,
    input_blocks: Vec<(String, usize)>,
    output_taps: Vec<(String, ObjectId)>,
    cond_tap: Option<ObjectId>,
}

fn lower_block(dp: &BlockDatapath) -> LoweredBlock {
    let mut objects = dp.objects.clone();
    let mut elements: Vec<GlobalConfigElement> = dp.stream.elements().to_vec();
    let mut next_id = objects.iter().map(|o| o.id.0).max().unwrap_or(0) + 1;
    let mut fresh = |objects: &mut Vec<LogicalObject>, cfg: LocalConfig| {
        let id = ObjectId(next_id);
        next_id += 1;
        objects.push(LogicalObject::compute(id, cfg));
        id
    };

    // Live-ins: Const -> addressed Load from mailbox block i.
    let mut input_blocks = Vec::with_capacity(dp.inputs.len());
    for (i, (var, const_id)) in dp.inputs.iter().enumerate() {
        let addr_obj = fresh(
            &mut objects,
            LocalConfig::with_imm(Operation::Const, Word(0)),
        );
        // Replace the const object with a memory load bound to block i.
        let obj = objects
            .iter_mut()
            .find(|o| o.id == *const_id)
            .expect("input object exists");
        *obj = LogicalObject::memory(*const_id, LocalConfig::op(Operation::Load)).with_init(vec![
            Word(0),
            Word(i as u64),
            Word(0),
        ]);
        // Rewrite its stream element from nullary to addressed.
        for e in elements.iter_mut() {
            if e.sink == *const_id && e.src_lhs.is_none() {
                e.src_lhs = Some(addr_obj);
            }
        }
        input_blocks.push((var.clone(), i));
    }

    // Probes for outputs and condition.
    let mut output_taps = Vec::with_capacity(dp.outputs.len());
    for (var, obj) in &dp.outputs {
        let probe = fresh(&mut objects, LocalConfig::op(Operation::Pass));
        elements.push(GlobalConfigElement::unary(probe, *obj));
        output_taps.push((var.clone(), probe));
    }
    let cond_tap = dp.cond.map(|c| {
        let probe = fresh(&mut objects, LocalConfig::op(Operation::Pass));
        elements.push(GlobalConfigElement::unary(probe, c));
        probe
    });

    LoweredBlock {
        objects,
        stream: elements.into_iter().collect(),
        input_blocks,
        output_taps,
        cond_tap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_topology::Cluster;
    use vlsi_workloads::figure7;

    #[test]
    fn figure7_runs_on_four_processors() {
        let mut chip = VlsiChip::new(8, 8, Cluster::default());
        let blocks = figure7::program().partition();
        let exec = BlockExecutor::deploy(&mut chip, blocks).unwrap();
        assert_eq!(exec.processor_count(), 4);
        for (x, y) in [(9i64, 4i64), (2, 5), (5, 5), (-3, 7)] {
            let inputs = HashMap::from([("x".to_string(), x), ("y".to_string(), y)]);
            let (env, stats) = exec.run(&mut chip, &inputs).unwrap();
            assert_eq!(
                env[figure7::RESULT_VAR],
                figure7::reference(x, y),
                "x={x} y={y}"
            );
            // Entry + one arm + buffer = 3 activations per run.
            assert_eq!(stats.blocks_executed, 3);
            assert!(stats.mailbox_writes >= 3);
        }
    }

    #[test]
    fn condition_selects_the_arm() {
        let mut chip = VlsiChip::new(8, 8, Cluster::default());
        let blocks = figure7::program().partition();
        let exec = BlockExecutor::deploy(&mut chip, blocks).unwrap();
        // Large x: then-arm (x+1). Large y: else-arm (y+2).
        let (env, _) = exec
            .run(
                &mut chip,
                &HashMap::from([("x".into(), 100i64), ("y".into(), 0i64)]),
            )
            .unwrap();
        assert_eq!(env["buff"], 101);
        let (env, _) = exec
            .run(
                &mut chip,
                &HashMap::from([("x".into(), 0i64), ("y".into(), 100i64)]),
            )
            .unwrap();
        assert_eq!(env["buff"], 102);
    }

    #[test]
    fn pipelined_execution_overlaps_blocks() {
        let mut chip = VlsiChip::new(8, 8, Cluster::default());
        let blocks = figure7::program().partition();
        let exec = BlockExecutor::deploy(&mut chip, blocks).unwrap();
        let datasets: Vec<HashMap<String, i64>> = (0..8i64)
            .map(|i| HashMap::from([("x".to_string(), i), ("y".to_string(), 7 - i)]))
            .collect();
        let (results, report) = exec.run_pipelined(&mut chip, &datasets).unwrap();
        assert_eq!(results.len(), 8);
        for (i, env) in results.iter().enumerate() {
            let i = i as i64;
            assert_eq!(env[figure7::RESULT_VAR], figure7::reference(i, 7 - i));
        }
        assert_eq!(report.datasets, 8);
        // The pipeline overlaps: the makespan beats sequential execution.
        assert!(report.pipelined_cycles < report.sequential_cycles);
        assert!(report.speedup > 1.2, "speedup {}", report.speedup);
    }

    #[test]
    fn runs_are_repeatable() {
        // The deployment must be reusable: datapaths reconfigure cleanly
        // (object caching makes later configures cheaper, not wrong).
        let mut chip = VlsiChip::new(8, 8, Cluster::default());
        let blocks = figure7::program().partition();
        let exec = BlockExecutor::deploy(&mut chip, blocks).unwrap();
        let inputs = HashMap::from([("x".to_string(), 3i64), ("y".to_string(), 9i64)]);
        let (a, _) = exec.run(&mut chip, &inputs).unwrap();
        let (b, _) = exec.run(&mut chip, &inputs).unwrap();
        assert_eq!(a, b);
    }
}

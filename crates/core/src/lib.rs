//! # vlsi-core — the VLSI processor
//!
//! This crate is the paper's headline artifact: a chip of replicated
//! clusters whose resources are *gathered* into adaptive processors of any
//! scale at run time, and released again — "up- or down-scaling is simply
//! to chain or unchain between the segmented interconnection networks"
//! (§6). There is no scaling instruction anywhere: scaling is wormhole
//! routing plus stores to programmable switches, exactly as §3.3 insists.
//!
//! * [`state`] — the four-state processor lifecycle of Figure 6(e):
//!   release / inactive / active / sleep, with read-write protection rules;
//! * [`chip`] — [`VlsiChip`]: the cluster grid, switch fabric, and NoC;
//!   gathering ([`VlsiChip::gather`]), splitting, fusing, releasing, and
//!   defect tolerance;
//! * [`scaled`] — [`ScaledProcessor`]: one gathered region with its folded
//!   stack, its adaptive processor, and its lifecycle state;
//! * [`blockexec`] — execution of basic-block-partitioned programs across
//!   multiple processors through mailbox memory writes and activation
//!   (Figure 7(d));
//! * [`staged`] — execution of compiler-emitted dataflow stage chains
//!   ([`StagedProgram`]) over the same mailbox choreography, with
//!   placement-directed deployment;
//! * [`region`] — the SoA region executor behind
//!   [`VlsiChip::execute_batch`]: whole regions of APs advanced in one
//!   cache-friendly sweep per tick, row-striped across a worker pool,
//!   bit-identical to the per-AP path.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod blockexec;
pub mod chip;
pub mod error;
pub mod region;
pub mod scaled;
pub mod staged;
pub mod state;

pub use blockexec::{BlockExecutor, PipelineReport, RunStats};
pub use chip::{ChipMetrics, ConfigStrategy, GatherOutcome, VlsiChip};
pub use error::CoreError;
pub use scaled::{ProcessorId, ScaledProcessor};
pub use staged::{PipelineRunStats, StagedExecutor, StagedProgram, StagedRunStats, StagedStage};
pub use state::ProcState;

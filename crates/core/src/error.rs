//! Errors of the chip layer.

use crate::scaled::ProcessorId;
use crate::state::ProcState;
use std::fmt;
use vlsi_ap::ApError;
use vlsi_noc::NocError;
use vlsi_object::ObjectError;
use vlsi_topology::{Coord, TopologyError};

/// Errors raised by the VLSI chip.
#[derive(Clone, PartialEq, Debug)]
pub enum CoreError {
    /// The topology layer rejected the operation.
    Topology(TopologyError),
    /// The NoC rejected or timed out on a configuration worm.
    Noc(NocError),
    /// The adaptive processor rejected the operation.
    Ap(ApError),
    /// The object model rejected the operation.
    Object(ObjectError),
    /// A region referenced a cluster outside the chip.
    OutOfGrid(Coord),
    /// A region included a cluster marked defective.
    DefectiveCluster(Coord),
    /// The processor ID is not allocated.
    UnknownProcessor(ProcessorId),
    /// An operation required a different lifecycle state.
    BadState {
        /// The processor involved.
        id: ProcessorId,
        /// Its current state.
        current: ProcState,
        /// The state the operation required.
        required: ProcState,
    },
    /// An illegal lifecycle transition was requested.
    BadTransition {
        /// The processor involved.
        id: ProcessorId,
        /// Its current state.
        from: ProcState,
        /// The requested state.
        to: ProcState,
    },
    /// A read/write touched a protected processor's memory.
    ProtectionViolation {
        /// The processor whose memory was touched.
        id: ProcessorId,
        /// Its state at the time.
        state: ProcState,
    },
    /// A batch execution named the same processor twice.
    DuplicateInBatch(ProcessorId),
    /// Fusing requires the two regions to be disjoint and their union
    /// connected.
    CannotFuse,
    /// Splitting requires the parts to partition the region exactly.
    BadSplit,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Topology(e) => write!(f, "topology: {e}"),
            CoreError::Noc(e) => write!(f, "noc: {e}"),
            CoreError::Ap(e) => write!(f, "processor: {e}"),
            CoreError::Object(e) => write!(f, "object: {e}"),
            CoreError::OutOfGrid(c) => write!(f, "cluster {c} outside the chip"),
            CoreError::DefectiveCluster(c) => write!(f, "cluster {c} is defective"),
            CoreError::UnknownProcessor(id) => write!(f, "unknown processor {id}"),
            CoreError::BadState {
                id,
                current,
                required,
            } => write!(f, "{id} is {current}, operation requires {required}"),
            CoreError::BadTransition { id, from, to } => {
                write!(f, "{id}: illegal transition {from} -> {to}")
            }
            CoreError::ProtectionViolation { id, state } => {
                write!(f, "{id} is {state}: memory is protected")
            }
            CoreError::DuplicateInBatch(id) => {
                write!(f, "processor {id} named twice in one batch")
            }
            CoreError::CannotFuse => write!(f, "regions cannot fuse"),
            CoreError::BadSplit => write!(f, "parts do not partition the region"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<TopologyError> for CoreError {
    fn from(e: TopologyError) -> CoreError {
        CoreError::Topology(e)
    }
}

impl From<NocError> for CoreError {
    fn from(e: NocError) -> CoreError {
        CoreError::Noc(e)
    }
}

impl From<ApError> for CoreError {
    fn from(e: ApError) -> CoreError {
        CoreError::Ap(e)
    }
}

impl From<ObjectError> for CoreError {
    fn from(e: ObjectError) -> CoreError {
        CoreError::Object(e)
    }
}

//! The SoA region executor: many APs advanced in one sweep per tick.
//!
//! [`VlsiChip::execute_batch`](crate::chip::VlsiChip::execute_batch)
//! detaches each named processor's configured datapath (plus its memory
//! blocks) into a [`SoaLane`] — flat struct-of-arrays slabs — and hands
//! the whole set here. [`sweep_lanes`] advances them *lane-major*: each
//! lane's dense arrays are driven front-to-back to completion while
//! they are hot in cache, which is the behaviour the per-AP
//! pointer-chasing loop can't deliver at 1024-AP scale.
//!
//! ## Sharding and determinism
//!
//! Lanes are fully independent (each owns its own memory blocks and
//! datapath state), so the sweep shards them into contiguous row
//! stripes — one per pool executor — and runs each stripe's sweep on
//! its own thread via [`Pool::run`]. Because no lane reads another
//! lane's state, the result of every lane is a pure function of that
//! lane alone: any stripe partition, any thread count, and the serial
//! path all produce byte-identical lanes. The ci.sh thread-matrix gate
//! (`soa_sweep` digest at 1/2/8 threads) and the per-AP-vs-SoA
//! equivalence step hold this to one byte pattern.

use std::sync::Mutex;
use vlsi_ap::SoaLane;
use vlsi_par::Pool;

/// Arms every lane with `tap_limit` / `max_cycles` and sweeps them all
/// to completion (drain, typed failure, or cycle-budget timeout —
/// recorded per lane, surfaced when the lane is dissolved).
///
/// With a serial pool, one stripe sweeps inline; with a threaded pool,
/// contiguous stripes of lanes sweep concurrently, bit-identical to the
/// serial schedule.
pub fn sweep_lanes(pool: &Pool, lanes: &mut [SoaLane], tap_limit: u64, max_cycles: u64) {
    for lane in lanes.iter_mut() {
        lane.start(tap_limit, max_cycles);
    }
    if lanes.is_empty() {
        return;
    }
    let stripes = pool.threads().clamp(1, lanes.len());
    if stripes <= 1 {
        sweep_stripe(lanes);
        return;
    }
    let per = lanes.len().div_ceil(stripes);
    let chunks: Vec<Mutex<&mut [SoaLane]>> = lanes.chunks_mut(per).map(Mutex::new).collect();
    pool.run(chunks.len(), &|i| {
        let mut stripe = chunks[i].lock().expect("stripe lock");
        sweep_stripe(&mut stripe);
    });
}

/// Sweeps one stripe lane-major: each lane's flat slabs are driven to
/// completion while they are hot in cache, then the sweep moves to the
/// next lane. Lanes are independent, so this is bit-identical to any
/// other schedule (including cycle-major) — the order only decides
/// cache behaviour, and keeping one lane's dense arrays resident beats
/// touching every lane once per cycle.
fn sweep_stripe(lanes: &mut [SoaLane]) {
    for lane in lanes.iter_mut() {
        while lane.is_running() {
            lane.step();
        }
    }
}

//! The processor lifecycle (Figure 6(e)).
//!
//! "First the processor starts from and ends with the release state that
//! is not used and allocated. After programming the switches in a minimum
//! AP, the processor turns into an inactive state that is ready to execute
//! but not read and write protected from others. … the region is invoked
//! as the scaled active AP. The active processor can be in an inactive
//! state by clearing the read and/or write protection. In an inactive
//! state, others can access its memory blocks. … The sleep state is ready
//! to execute and is read- and write-protected from others. … the sleep
//! state can be used for processor-level synchronization."

use std::fmt;

/// The four lifecycle states.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ProcState {
    /// Not allocated; the clusters are free.
    Release,
    /// Allocated and ready; *not* protected — others may access its
    /// memory blocks (mailbox writes land here).
    Inactive,
    /// Executing; read/write protected from others.
    Active,
    /// Ready but dormant, protected; wakes on a timer or event
    /// (processor-level synchronisation).
    Sleep,
}

impl ProcState {
    /// Whether a transition `self → to` is legal per Figure 6(e).
    pub fn can_transition(self, to: ProcState) -> bool {
        use ProcState::*;
        matches!(
            (self, to),
            (Release, Inactive)   // gather: switches programmed
                | (Inactive, Active)   // invoke (protections set)
                | (Active, Inactive)   // clear protections
                | (Active, Sleep)      // wait for event/timer
                | (Sleep, Active)      // wake
                | (Inactive, Release) // down-scale
        )
    }

    /// Whether other processors may read/write this processor's memory
    /// blocks.
    pub fn others_may_access_memory(self) -> bool {
        matches!(self, ProcState::Inactive)
    }

    /// Whether the processor may fetch global configuration data and
    /// execute.
    pub fn may_execute(self) -> bool {
        matches!(self, ProcState::Active)
    }
}

impl fmt::Display for ProcState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProcState::Release => "release",
            ProcState::Inactive => "inactive",
            ProcState::Active => "active",
            ProcState::Sleep => "sleep",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ProcState::*;

    #[test]
    fn legal_transitions() {
        assert!(Release.can_transition(Inactive));
        assert!(Inactive.can_transition(Active));
        assert!(Active.can_transition(Inactive));
        assert!(Active.can_transition(Sleep));
        assert!(Sleep.can_transition(Active));
        assert!(Inactive.can_transition(Release));
    }

    #[test]
    fn illegal_transitions() {
        // No shortcut from release to active: switches must be programmed
        // and the processor pass through inactive.
        assert!(!Release.can_transition(Active));
        assert!(!Release.can_transition(Sleep));
        // Sleep is protected: it cannot be released or deactivated
        // without waking first.
        assert!(!Sleep.can_transition(Release));
        assert!(!Sleep.can_transition(Inactive));
        // Active regions cannot vanish without clearing protections.
        assert!(!Active.can_transition(Release));
        // Self-transitions are not in the diagram.
        for s in [Release, Inactive, Active, Sleep] {
            assert!(!s.can_transition(s));
        }
    }

    #[test]
    fn protection_rules() {
        assert!(Inactive.others_may_access_memory());
        assert!(!Active.others_may_access_memory());
        assert!(!Sleep.others_may_access_memory());
        assert!(!Release.others_may_access_memory());
        assert!(Active.may_execute());
        assert!(!Inactive.may_execute());
        assert!(!Sleep.may_execute());
    }
}

//! Property-based tests for the object model.

use proptest::prelude::*;
use vlsi_object::{
    GlobalConfigElement, GlobalConfigStream, LocalConfig, LogicalObject, MemoryBlock, ObjectId,
    Operation, Word,
};

fn any_op() -> impl Strategy<Value = Operation> {
    prop::sample::select(vlsi_object::op::ALL_OPERATIONS.to_vec())
}

proptest! {
    /// Every operation is total: no input can make `eval` panic, and
    /// context-free operations always produce a word.
    #[test]
    fn operations_are_total(op in any_op(), a: u64, b: u64, imm: u64) {
        let out = op.eval(Word(a), Word(b), Word(imm));
        let needs_context = op.uses_predicate() || op.is_memory_op();
        prop_assert_eq!(out.is_none(), needs_context);
    }

    /// eval is a pure function: same inputs, same outputs (bit-exact, even
    /// for NaN-producing float cases).
    #[test]
    fn operations_are_deterministic(op in any_op(), a: u64, b: u64, imm: u64) {
        let x = op.eval(Word(a), Word(b), Word(imm)).map(|w| w.0);
        let y = op.eval(Word(a), Word(b), Word(imm)).map(|w| w.0);
        prop_assert_eq!(x, y);
    }

    /// Dependency distances match a naive recomputation that counts the
    /// distinct IDs referenced since the previous reference.
    #[test]
    fn dependency_distance_matches_naive(
        refs in prop::collection::vec((0u32..12, 0u32..12), 1..60)
    ) {
        let stream: GlobalConfigStream = refs
            .iter()
            .map(|&(sink, src)| GlobalConfigElement::unary(ObjectId(sink), ObjectId(src)))
            .collect();
        let flat: Vec<ObjectId> = stream
            .elements()
            .iter()
            .flat_map(|e| e.referenced().collect::<Vec<_>>())
            .collect();
        let got = stream.dependency_distances();
        prop_assert_eq!(got.len(), flat.len());
        for (i, (id, dist)) in got.iter().enumerate() {
            prop_assert_eq!(*id, flat[i]);
            // Naive: find previous occurrence, count distinct IDs between.
            let prev = flat[..i].iter().rposition(|x| x == id);
            match prev {
                None => prop_assert_eq!(*dist, None),
                Some(p) => {
                    let distinct: std::collections::HashSet<_> =
                        flat[p + 1..i].iter().collect();
                    prop_assert_eq!(*dist, Some(distinct.len()));
                }
            }
        }
    }

    /// The LRU inclusion property: hits are monotone non-decreasing in
    /// capacity — the foundation of the paper's stack-based replacement.
    #[test]
    fn hits_monotone_in_capacity(
        refs in prop::collection::vec((0u32..16, 0u32..16), 1..80)
    ) {
        let stream: GlobalConfigStream = refs
            .iter()
            .map(|&(sink, src)| GlobalConfigElement::unary(ObjectId(sink), ObjectId(src)))
            .collect();
        let mut prev = 0usize;
        for c in 0..20 {
            let (hits, total) = stream.hit_count(c);
            prop_assert!(hits >= prev);
            prop_assert!(hits <= total);
            prev = hits;
        }
        // At min_streaming_capacity, all reuse hits.
        let c = stream.min_streaming_capacity();
        let (hits, total) = stream.hit_count(c);
        prop_assert_eq!(hits, total - stream.working_set().len());
    }

    /// Memory blocks are a word-addressable store: the last write wins.
    #[test]
    fn memory_last_write_wins(
        writes in prop::collection::vec((0u64..8192, any::<u64>()), 1..50)
    ) {
        let mut m = MemoryBlock::new();
        for &(a, v) in &writes {
            m.store(a, Word(v)).unwrap();
        }
        let mut last = std::collections::HashMap::new();
        for &(a, v) in &writes {
            last.insert(a, v);
        }
        for (&a, &v) in &last {
            prop_assert_eq!(m.load(a).unwrap(), Word(v));
        }
    }

    /// Bind/unbind of a logical object preserves identity and register state
    /// (virtual-hardware write-back round trip).
    #[test]
    fn bind_unbind_roundtrip(id: u32, init in prop::collection::vec(any::<u64>(), 0..6)) {
        let lo = LogicalObject::compute(ObjectId(id), LocalConfig::op(Operation::IAdd))
            .with_init(init.iter().map(|&v| Word(v)).collect());
        let bound = vlsi_object::BoundObject::bind(lo.clone());
        let back = bound.unbind();
        prop_assert_eq!(back.id, lo.id);
        // Written-back init is the full register file; prefix must match.
        for (i, &v) in init.iter().enumerate() {
            prop_assert_eq!(back.init[i], Word(v));
        }
    }
}

//! The object library: the backing store of virtual hardware.
//!
//! §2.3: on an object cache-miss, "its logical object(s) is loaded from the
//! library in the memory blocks to a configuration buffer object(s)". The
//! library is the set of all logical objects an application may request;
//! swap-out (replacement, §2.5) writes a logical object *back* into the
//! library, analogous to the write-back policy of a conventional cache.
//!
//! The library also models the *cost* of a miss: loading a logical object
//! from a memory block takes [`ObjectLibrary::LOAD_LATENCY`] cycles, the
//! long worst-case delay §2.6.2 attributes to reaching memory objects that
//! sit outside the stack.

use crate::error::ObjectError;
use crate::id::ObjectId;
use crate::object::LogicalObject;
use std::collections::HashMap;

/// The repository of logical objects held in memory blocks.
#[derive(Clone, Debug, Default)]
pub struct ObjectLibrary {
    objects: HashMap<ObjectId, LogicalObject>,
    loads: u64,
    stores: u64,
}

impl ObjectLibrary {
    /// Cycles to fetch one logical object from a memory block into a
    /// configuration buffer (§2.6.2 worst-case delay; a model constant).
    pub const LOAD_LATENCY: u32 = 8;

    /// An empty library.
    pub fn new() -> ObjectLibrary {
        ObjectLibrary::default()
    }

    /// Registers a logical object. Fails on a duplicate ID.
    pub fn register(&mut self, obj: LogicalObject) -> Result<(), ObjectError> {
        obj.validate()?;
        match self.objects.entry(obj.id) {
            std::collections::hash_map::Entry::Occupied(_) => {
                Err(ObjectError::DuplicateObject(obj.id))
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(obj);
                Ok(())
            }
        }
    }

    /// Registers many logical objects.
    pub fn register_all(
        &mut self,
        objs: impl IntoIterator<Item = LogicalObject>,
    ) -> Result<(), ObjectError> {
        for o in objs {
            self.register(o)?;
        }
        Ok(())
    }

    /// Fetches (clones) a logical object for loading into a configuration
    /// buffer. Counts as a library load.
    pub fn load(&mut self, id: ObjectId) -> Result<LogicalObject, ObjectError> {
        let obj = self
            .objects
            .get(&id)
            .cloned()
            .ok_or(ObjectError::UnknownObject(id))?;
        self.loads += 1;
        Ok(obj)
    }

    /// Writes a swapped-out logical object back (write-back policy, §2.5).
    ///
    /// Unlike [`register`](Self::register) this overwrites: the library copy
    /// is stale by definition once the object has executed.
    pub fn write_back(&mut self, obj: LogicalObject) {
        self.stores += 1;
        self.objects.insert(obj.id, obj);
    }

    /// Looks up an object without counting a load.
    pub fn peek(&self, id: ObjectId) -> Option<&LogicalObject> {
        self.objects.get(&id)
    }

    /// Whether an object is registered.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.objects.contains_key(&id)
    }

    /// Number of registered objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Library loads performed (cache misses serviced).
    pub fn load_count(&self) -> u64 {
        self.loads
    }

    /// Library write-backs performed (replacements).
    pub fn store_count(&self) -> u64 {
        self.stores
    }

    /// All registered IDs (unordered).
    pub fn ids(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.objects.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LocalConfig;
    use crate::op::Operation;
    use crate::value::Word;

    fn obj(id: u32) -> LogicalObject {
        LogicalObject::compute(ObjectId(id), LocalConfig::op(Operation::IAdd))
    }

    #[test]
    fn register_and_load() {
        let mut lib = ObjectLibrary::new();
        lib.register(obj(1)).unwrap();
        assert!(lib.contains(ObjectId(1)));
        let o = lib.load(ObjectId(1)).unwrap();
        assert_eq!(o.id, ObjectId(1));
        assert_eq!(lib.load_count(), 1);
    }

    #[test]
    fn duplicate_rejected() {
        let mut lib = ObjectLibrary::new();
        lib.register(obj(1)).unwrap();
        assert_eq!(
            lib.register(obj(1)),
            Err(ObjectError::DuplicateObject(ObjectId(1)))
        );
    }

    #[test]
    fn unknown_object() {
        let mut lib = ObjectLibrary::new();
        assert_eq!(
            lib.load(ObjectId(9)),
            Err(ObjectError::UnknownObject(ObjectId(9)))
        );
        assert_eq!(lib.load_count(), 0, "failed loads are not counted");
    }

    #[test]
    fn write_back_overwrites() {
        let mut lib = ObjectLibrary::new();
        lib.register(obj(1)).unwrap();
        let mut o = lib.load(ObjectId(1)).unwrap();
        o.init = vec![Word(5)];
        lib.write_back(o);
        assert_eq!(lib.peek(ObjectId(1)).unwrap().init, vec![Word(5)]);
        assert_eq!(lib.store_count(), 1);
        assert_eq!(lib.len(), 1);
    }

    #[test]
    fn register_all_validates() {
        let mut lib = ObjectLibrary::new();
        let bad = LogicalObject::memory(ObjectId(2), LocalConfig::op(Operation::IAdd));
        assert!(lib.register_all(vec![obj(1), bad]).is_err());
    }
}

//! The 64-bit machine word that flows through configured datapaths.
//!
//! The paper's physical object is a 64-bit fabric (Table 1: 64b fMul/fAdd,
//! fDiv, iMul + iALU/shift, iDiv, six 64-bit registers). A [`Word`] is the
//! raw 64-bit payload; integer and floating-point views are bit-casts, just
//! as they would be on a shared register file.

use std::fmt;

/// A 64-bit value exchanged between objects.
///
/// The interpretation (unsigned, signed, or IEEE-754 double) is decided by
/// the operation consuming it, never by the word itself.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Word(pub u64);

impl Word {
    /// The all-zero word.
    pub const ZERO: Word = Word(0);
    /// Canonical boolean `true` (predicates produced by compare operations).
    pub const TRUE: Word = Word(1);
    /// Canonical boolean `false`.
    pub const FALSE: Word = Word(0);

    /// Builds a word from a signed 64-bit integer (two's complement).
    #[inline]
    pub fn from_i64(v: i64) -> Word {
        Word(v as u64)
    }

    /// Builds a word from an IEEE-754 double (bit-cast).
    #[inline]
    pub fn from_f64(v: f64) -> Word {
        Word(v.to_bits())
    }

    /// Reads the word as an unsigned integer.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Reads the word as a signed integer (two's complement).
    #[inline]
    pub fn as_i64(self) -> i64 {
        self.0 as i64
    }

    /// Reads the word as an IEEE-754 double (bit-cast).
    #[inline]
    pub fn as_f64(self) -> f64 {
        f64::from_bits(self.0)
    }

    /// Reads the word as a predicate: any non-zero value is `true`.
    #[inline]
    pub fn as_bool(self) -> bool {
        self.0 != 0
    }

    /// Builds a predicate word.
    #[inline]
    pub fn from_bool(v: bool) -> Word {
        if v {
            Word::TRUE
        } else {
            Word::FALSE
        }
    }
}

impl fmt::Debug for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Word({:#x})", self.0)
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Word {
    fn from(v: u64) -> Word {
        Word(v)
    }
}

impl From<i64> for Word {
    fn from(v: i64) -> Word {
        Word::from_i64(v)
    }
}

impl From<f64> for Word {
    fn from(v: f64) -> Word {
        Word::from_f64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_roundtrip() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 42] {
            assert_eq!(Word::from_i64(v).as_i64(), v);
        }
    }

    #[test]
    fn float_roundtrip() {
        for v in [0.0f64, -0.0, 1.5, -3.25, f64::MAX, f64::MIN_POSITIVE] {
            assert_eq!(Word::from_f64(v).as_f64(), v);
        }
        assert!(Word::from_f64(f64::NAN).as_f64().is_nan());
    }

    #[test]
    fn predicates() {
        assert!(Word::TRUE.as_bool());
        assert!(!Word::FALSE.as_bool());
        assert!(Word(0xdead_beef).as_bool());
        assert_eq!(Word::from_bool(true), Word::TRUE);
        assert_eq!(Word::from_bool(false), Word::FALSE);
    }

    #[test]
    fn word_is_one_machine_word() {
        assert_eq!(std::mem::size_of::<Word>(), 8);
    }
}

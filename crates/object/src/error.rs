//! Error type shared by the object-model substrates.

use crate::id::{ObjectId, PhysSlot};
use std::fmt;

/// Errors raised by the object model.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ObjectError {
    /// A logical object ID was not found in the library.
    UnknownObject(ObjectId),
    /// The same logical object ID was registered twice in a library.
    DuplicateObject(ObjectId),
    /// A memory access fell outside the 64 KiB block.
    AddressOutOfRange {
        /// The requested word address.
        addr: u64,
        /// The number of words in the block.
        capacity: usize,
    },
    /// A memory-only operation was configured onto a compute object, or
    /// vice versa.
    KindMismatch {
        /// The object that was mis-configured.
        id: ObjectId,
        /// Human-readable reason.
        what: &'static str,
    },
    /// A physical slot index was outside the array.
    BadSlot(PhysSlot),
    /// Binding was attempted on a slot that already holds an object.
    SlotOccupied(PhysSlot),
    /// An operation on an empty slot.
    SlotEmpty(PhysSlot),
}

impl fmt::Display for ObjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectError::UnknownObject(id) => write!(f, "unknown logical object {id}"),
            ObjectError::DuplicateObject(id) => {
                write!(f, "logical object {id} already registered")
            }
            ObjectError::AddressOutOfRange { addr, capacity } => {
                write!(
                    f,
                    "address {addr:#x} outside memory block of {capacity} words"
                )
            }
            ObjectError::KindMismatch { id, what } => {
                write!(f, "object {id}: {what}")
            }
            ObjectError::BadSlot(s) => write!(f, "physical slot {s} out of range"),
            ObjectError::SlotOccupied(s) => write!(f, "physical slot {s} already bound"),
            ObjectError::SlotEmpty(s) => write!(f, "physical slot {s} holds no object"),
        }
    }
}

impl std::error::Error for ObjectError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ObjectError::AddressOutOfRange {
            addr: 0x10000,
            capacity: 8192,
        };
        let s = e.to_string();
        assert!(s.contains("0x10000"));
        assert!(s.contains("8192"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&ObjectError::UnknownObject(ObjectId(1)));
    }
}

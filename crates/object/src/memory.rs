//! The 64 KiB memory block (Table 2).
//!
//! Each memory object contains a 64 KB SRAM ("We used the configuration of
//! 64KB SRAM, trading off for an area", §4.1), addressed here in 64-bit
//! words. Memory blocks serve three roles in the architecture:
//!
//! 1. application data (load/store streams of a configured datapath);
//! 2. the **library** region holding swapped-out logical objects (§2.5);
//! 3. the mailbox through which a *preceding* processor writes inputs into a
//!    *following* processor while the latter is inactive (§3.3, Figure 7(d)).
//!
//! Accesses outside the block are errors — the scaled AP's read/write
//! protection (§3.3) is enforced one level up, in `vlsi-core`.

use crate::error::ObjectError;
use crate::value::Word;

/// Number of 64-bit words in a 64 KiB block.
pub const MEMORY_WORDS: usize = 64 * 1024 / 8;

/// A 64 KiB on-chip SRAM block.
#[derive(Clone, PartialEq, Debug)]
pub struct MemoryBlock {
    words: Vec<Word>,
    reads: u64,
    writes: u64,
}

impl Default for MemoryBlock {
    fn default() -> Self {
        MemoryBlock::new()
    }
}

impl MemoryBlock {
    /// A zero-initialised block.
    pub fn new() -> MemoryBlock {
        MemoryBlock {
            words: vec![Word::ZERO; MEMORY_WORDS],
            reads: 0,
            writes: 0,
        }
    }

    /// Capacity in words.
    pub fn capacity(&self) -> usize {
        self.words.len()
    }

    /// Reads the word at `addr` (word address).
    pub fn load(&mut self, addr: u64) -> Result<Word, ObjectError> {
        let w = self
            .words
            .get(addr as usize)
            .copied()
            .ok_or(ObjectError::AddressOutOfRange {
                addr,
                capacity: MEMORY_WORDS,
            })?;
        self.reads += 1;
        Ok(w)
    }

    /// Writes `value` at `addr` (word address).
    pub fn store(&mut self, addr: u64, value: Word) -> Result<(), ObjectError> {
        let cap = self.words.len();
        let slot = self
            .words
            .get_mut(addr as usize)
            .ok_or(ObjectError::AddressOutOfRange {
                addr,
                capacity: cap,
            })?;
        *slot = value;
        self.writes += 1;
        Ok(())
    }

    /// Reads without counting (for test/assertion plumbing).
    pub fn peek(&self, addr: u64) -> Result<Word, ObjectError> {
        self.words
            .get(addr as usize)
            .copied()
            .ok_or(ObjectError::AddressOutOfRange {
                addr,
                capacity: MEMORY_WORDS,
            })
    }

    /// Bulk-writes a slice starting at `addr`.
    pub fn store_slice(&mut self, addr: u64, values: &[Word]) -> Result<(), ObjectError> {
        for (i, v) in values.iter().enumerate() {
            self.store(addr + i as u64, *v)?;
        }
        Ok(())
    }

    /// Bulk-reads `len` words starting at `addr`.
    pub fn load_slice(&mut self, addr: u64, len: usize) -> Result<Vec<Word>, ObjectError> {
        (0..len).map(|i| self.load(addr + i as u64)).collect()
    }

    /// Total successful reads since construction.
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Total successful writes since construction.
    pub fn write_count(&self) -> u64 {
        self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_64kib_of_words() {
        assert_eq!(MemoryBlock::new().capacity(), 8192);
    }

    #[test]
    fn load_store_roundtrip() {
        let mut m = MemoryBlock::new();
        m.store(100, Word(0xabcd)).unwrap();
        assert_eq!(m.load(100).unwrap(), Word(0xabcd));
        assert_eq!(m.load(101).unwrap(), Word::ZERO);
    }

    #[test]
    fn out_of_range_is_an_error() {
        let mut m = MemoryBlock::new();
        assert!(m.load(MEMORY_WORDS as u64).is_err());
        assert!(m.store(u64::MAX, Word(1)).is_err());
        // Last valid word works.
        assert!(m.store(MEMORY_WORDS as u64 - 1, Word(1)).is_ok());
    }

    #[test]
    fn slices() {
        let mut m = MemoryBlock::new();
        m.store_slice(10, &[Word(1), Word(2), Word(3)]).unwrap();
        assert_eq!(
            m.load_slice(10, 3).unwrap(),
            vec![Word(1), Word(2), Word(3)]
        );
        // A slice crossing the end fails.
        assert!(m
            .store_slice(MEMORY_WORDS as u64 - 1, &[Word(1), Word(2)])
            .is_err());
    }

    #[test]
    fn access_counters() {
        let mut m = MemoryBlock::new();
        m.store(0, Word(1)).unwrap();
        m.load(0).unwrap();
        m.load(0).unwrap();
        let _ = m.load(1 << 40); // failed access: not counted
        assert_eq!(m.write_count(), 1);
        assert_eq!(m.read_count(), 2);
        // peek does not count.
        m.peek(0).unwrap();
        assert_eq!(m.read_count(), 2);
    }
}

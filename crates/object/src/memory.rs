//! The 64 KiB memory block (Table 2).
//!
//! Each memory object contains a 64 KB SRAM ("We used the configuration of
//! 64KB SRAM, trading off for an area", §4.1), addressed here in 64-bit
//! words. Memory blocks serve three roles in the architecture:
//!
//! 1. application data (load/store streams of a configured datapath);
//! 2. the **library** region holding swapped-out logical objects (§2.5);
//! 3. the mailbox through which a *preceding* processor writes inputs into a
//!    *following* processor while the latter is inactive (§3.3, Figure 7(d)).
//!
//! Accesses outside the block are errors — the scaled AP's read/write
//! protection (§3.3) is enforced one level up, in `vlsi-core`.

use crate::error::ObjectError;
use crate::value::Word;

/// Number of 64-bit words in a 64 KiB block.
pub const MEMORY_WORDS: usize = 64 * 1024 / 8;

/// A 64 KiB on-chip SRAM block.
///
/// The backing store is *lazy*: a fresh block owns no heap words, and the
/// vector grows (zero-filled) only up to the highest address ever stored.
/// A scaled processor instantiates one block per memory object at gather
/// time, so an eager 64 KiB memset per block would put megabytes of page
/// traffic on the gather path — the cost §3.4 argues must stay low enough
/// to pay at run time. Loads beyond the touched prefix (but inside the
/// block) read as zero, exactly as an eagerly-zeroed block would.
#[derive(Clone, Debug)]
pub struct MemoryBlock {
    words: Vec<Word>,
    reads: u64,
    writes: u64,
}

impl Default for MemoryBlock {
    fn default() -> Self {
        MemoryBlock::new()
    }
}

impl PartialEq for MemoryBlock {
    fn eq(&self, other: &Self) -> bool {
        // Logical contents: the untouched tail is all zeros, so two blocks
        // with different touched prefixes can still be equal.
        let (short, long) = if self.words.len() <= other.words.len() {
            (&self.words, &other.words)
        } else {
            (&other.words, &self.words)
        };
        self.reads == other.reads
            && self.writes == other.writes
            && long[..short.len()] == short[..]
            && long[short.len()..].iter().all(|w| *w == Word::ZERO)
    }
}

impl MemoryBlock {
    /// A zero-initialised block.
    pub fn new() -> MemoryBlock {
        MemoryBlock {
            words: Vec::new(),
            reads: 0,
            writes: 0,
        }
    }

    /// Capacity in words.
    pub fn capacity(&self) -> usize {
        MEMORY_WORDS
    }

    /// Reads the word at `addr` (word address).
    pub fn load(&mut self, addr: u64) -> Result<Word, ObjectError> {
        if addr as usize >= MEMORY_WORDS {
            return Err(ObjectError::AddressOutOfRange {
                addr,
                capacity: MEMORY_WORDS,
            });
        }
        let w = self.words.get(addr as usize).copied().unwrap_or(Word::ZERO);
        self.reads += 1;
        Ok(w)
    }

    /// Writes `value` at `addr` (word address).
    pub fn store(&mut self, addr: u64, value: Word) -> Result<(), ObjectError> {
        let i = addr as usize;
        if i >= MEMORY_WORDS {
            return Err(ObjectError::AddressOutOfRange {
                addr,
                capacity: MEMORY_WORDS,
            });
        }
        if i >= self.words.len() {
            self.words.resize(i + 1, Word::ZERO);
        }
        self.words[i] = value;
        self.writes += 1;
        Ok(())
    }

    /// Reads without counting (for test/assertion plumbing).
    pub fn peek(&self, addr: u64) -> Result<Word, ObjectError> {
        if addr as usize >= MEMORY_WORDS {
            return Err(ObjectError::AddressOutOfRange {
                addr,
                capacity: MEMORY_WORDS,
            });
        }
        Ok(self.words.get(addr as usize).copied().unwrap_or(Word::ZERO))
    }

    /// Bulk-writes a slice starting at `addr`.
    pub fn store_slice(&mut self, addr: u64, values: &[Word]) -> Result<(), ObjectError> {
        for (i, v) in values.iter().enumerate() {
            self.store(addr + i as u64, *v)?;
        }
        Ok(())
    }

    /// Bulk-reads `len` words starting at `addr`.
    pub fn load_slice(&mut self, addr: u64, len: usize) -> Result<Vec<Word>, ObjectError> {
        (0..len).map(|i| self.load(addr + i as u64)).collect()
    }

    /// Total successful reads since construction.
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Total successful writes since construction.
    pub fn write_count(&self) -> u64 {
        self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_64kib_of_words() {
        assert_eq!(MemoryBlock::new().capacity(), 8192);
    }

    #[test]
    fn load_store_roundtrip() {
        let mut m = MemoryBlock::new();
        m.store(100, Word(0xabcd)).unwrap();
        assert_eq!(m.load(100).unwrap(), Word(0xabcd));
        assert_eq!(m.load(101).unwrap(), Word::ZERO);
    }

    #[test]
    fn out_of_range_is_an_error() {
        let mut m = MemoryBlock::new();
        assert!(m.load(MEMORY_WORDS as u64).is_err());
        assert!(m.store(u64::MAX, Word(1)).is_err());
        // Last valid word works.
        assert!(m.store(MEMORY_WORDS as u64 - 1, Word(1)).is_ok());
    }

    #[test]
    fn slices() {
        let mut m = MemoryBlock::new();
        m.store_slice(10, &[Word(1), Word(2), Word(3)]).unwrap();
        assert_eq!(
            m.load_slice(10, 3).unwrap(),
            vec![Word(1), Word(2), Word(3)]
        );
        // A slice crossing the end fails.
        assert!(m
            .store_slice(MEMORY_WORDS as u64 - 1, &[Word(1), Word(2)])
            .is_err());
    }

    #[test]
    fn lazy_backing_is_observably_zeroed() {
        let mut m = MemoryBlock::new();
        // Untouched words read as zero everywhere inside the block.
        assert_eq!(m.load(MEMORY_WORDS as u64 - 1).unwrap(), Word::ZERO);
        assert_eq!(m.peek(4096).unwrap(), Word::ZERO);
        // Equality is logical content, not allocated length.
        let mut a = MemoryBlock::new();
        let mut b = MemoryBlock::new();
        a.store(5, Word::ZERO).unwrap();
        b.store(100, Word::ZERO).unwrap();
        assert_eq!(a, b);
        b.store(100, Word(1)).unwrap();
        a.store(5, Word::ZERO).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn access_counters() {
        let mut m = MemoryBlock::new();
        m.store(0, Word(1)).unwrap();
        m.load(0).unwrap();
        m.load(0).unwrap();
        let _ = m.load(1 << 40); // failed access: not counted
        assert_eq!(m.write_count(), 1);
        assert_eq!(m.read_count(), 2);
        // peek does not count.
        m.peek(0).unwrap();
        assert_eq!(m.read_count(), 2);
    }
}

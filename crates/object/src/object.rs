//! Logical objects, physical objects, and the binding between them.
//!
//! §2.1: "A processing element called a physical object performs its
//! operation as defined by the configuration data. … The pair of initial
//! data and local configuration data is called a logical object, and a
//! logical object binded on the physical object is called an object."
//!
//! A [`PhysicalObject`] owns the per-slot hardware state of Table 1: the
//! execution fabric and six 64-bit registers. It can hold at most one bound
//! logical object at a time. Binding activates the fabric ("The 'hit' object
//! acknowledges the hit and activates the execution fabric", §2.3); the
//! logical object is recovered intact on swap-out, which is what makes
//! virtual hardware (§2.5) possible.

use crate::config::LocalConfig;
use crate::error::ObjectError;
use crate::id::{ObjectId, PhysSlot};
use crate::value::Word;

/// Number of 64-bit registers in a physical object (Table 1: `64b Register x6`).
pub const PHYS_REGISTERS: usize = 6;

/// The three object species a cluster provides (Figure 4(b)).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ObjectKind {
    /// General-purpose compute fabric (Table 1).
    Compute,
    /// Memory block with its own small fabric (Table 2); sits *outside* the
    /// stack ("An object including a memory unit is treated as out of the
    /// stack", §2.6.2).
    Memory,
    /// System object: the per-cluster sequencer/control element (Figure 4(b)).
    System,
}

/// The mobile unit the AP caches: local configuration plus initial data.
#[derive(Clone, PartialEq, Debug)]
pub struct LogicalObject {
    /// The application-visible identity.
    pub id: ObjectId,
    /// What the object computes once bound.
    pub cfg: LocalConfig,
    /// Initial register contents installed at bind time (at most
    /// [`PHYS_REGISTERS`] words; shorter vectors leave the rest zero).
    pub init: Vec<Word>,
    /// Which physical-object species this logical object requires.
    pub kind: ObjectKind,
}

impl LogicalObject {
    /// Builds a compute logical object.
    pub fn compute(id: ObjectId, cfg: LocalConfig) -> LogicalObject {
        LogicalObject {
            id,
            cfg,
            init: Vec::new(),
            kind: ObjectKind::Compute,
        }
    }

    /// Builds a memory logical object.
    pub fn memory(id: ObjectId, cfg: LocalConfig) -> LogicalObject {
        LogicalObject {
            id,
            cfg,
            init: Vec::new(),
            kind: ObjectKind::Memory,
        }
    }

    /// Attaches initial data (truncated to the register-file size).
    pub fn with_init(mut self, init: Vec<Word>) -> LogicalObject {
        self.init = init;
        self.init.truncate(PHYS_REGISTERS);
        self
    }

    /// Validates that the configured operation matches the object kind.
    pub fn validate(&self) -> Result<(), ObjectError> {
        let mem_op = self.cfg.op.is_memory_op();
        match (self.kind, mem_op) {
            (ObjectKind::Memory, false) => Err(ObjectError::KindMismatch {
                id: self.id,
                what: "memory object configured with a compute operation",
            }),
            (ObjectKind::Compute, true) | (ObjectKind::System, true) => {
                Err(ObjectError::KindMismatch {
                    id: self.id,
                    what: "compute/system object configured with a memory operation",
                })
            }
            _ => Ok(()),
        }
    }
}

/// A logical object bound on a physical object — "an object" in the paper's
/// terminology. Carries the live register state.
#[derive(Clone, PartialEq, Debug)]
pub struct BoundObject {
    /// The logical identity and configuration.
    pub logical: LogicalObject,
    /// Live register file (starts as `logical.init`, may be mutated by
    /// execution; preserved across swap-out).
    pub regs: [Word; PHYS_REGISTERS],
    /// Whether the execution fabric has been woken by an acknowledged
    /// request (§2.3 step: "activates the execution fabric").
    pub active: bool,
}

impl BoundObject {
    /// Binds a logical object, installing its initial data.
    pub fn bind(logical: LogicalObject) -> BoundObject {
        let mut regs = [Word::ZERO; PHYS_REGISTERS];
        for (r, v) in regs.iter_mut().zip(logical.init.iter()) {
            *r = *v;
        }
        BoundObject {
            logical,
            regs,
            active: false,
        }
    }

    /// Unbinds, recovering the logical object with its *current* register
    /// state as initial data, so a later re-bind resumes where it left off
    /// (the write-back of virtual hardware, §2.5).
    pub fn unbind(self) -> LogicalObject {
        let mut logical = self.logical;
        logical.init = self.regs.to_vec();
        logical
    }

    /// The object's identity.
    pub fn id(&self) -> ObjectId {
        self.logical.id
    }
}

/// A processing-element slot of the array, possibly holding a bound object.
#[derive(Clone, PartialEq, Debug)]
pub struct PhysicalObject {
    /// Where in the array (and thus the stack) this element sits.
    pub slot: PhysSlot,
    /// Which species of element this is.
    pub kind: ObjectKind,
    /// The object currently bound here, if any.
    pub bound: Option<BoundObject>,
}

impl PhysicalObject {
    /// An empty physical object of the given kind.
    pub fn new(slot: PhysSlot, kind: ObjectKind) -> PhysicalObject {
        PhysicalObject {
            slot,
            kind,
            bound: None,
        }
    }

    /// Whether a logical object is currently bound here.
    pub fn is_bound(&self) -> bool {
        self.bound.is_some()
    }

    /// The ID of the bound object, if any.
    pub fn bound_id(&self) -> Option<ObjectId> {
        self.bound.as_ref().map(|b| b.id())
    }

    /// Binds a logical object onto this element.
    pub fn bind(&mut self, logical: LogicalObject) -> Result<(), ObjectError> {
        if self.bound.is_some() {
            return Err(ObjectError::SlotOccupied(self.slot));
        }
        logical.validate()?;
        if logical.kind != self.kind {
            return Err(ObjectError::KindMismatch {
                id: logical.id,
                what: "logical object kind does not match physical element kind",
            });
        }
        self.bound = Some(BoundObject::bind(logical));
        Ok(())
    }

    /// Unbinds and returns the logical object (with live state written back).
    pub fn unbind(&mut self) -> Result<LogicalObject, ObjectError> {
        self.bound
            .take()
            .map(BoundObject::unbind)
            .ok_or(ObjectError::SlotEmpty(self.slot))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Operation;

    fn compute_obj(id: u32) -> LogicalObject {
        LogicalObject::compute(ObjectId(id), LocalConfig::op(Operation::IAdd))
    }

    #[test]
    fn bind_installs_initial_data() {
        let lo = compute_obj(1).with_init(vec![Word(7), Word(8)]);
        let b = BoundObject::bind(lo);
        assert_eq!(b.regs[0], Word(7));
        assert_eq!(b.regs[1], Word(8));
        assert_eq!(b.regs[2], Word::ZERO);
        assert!(!b.active);
    }

    #[test]
    fn init_truncated_to_register_file() {
        let lo = compute_obj(1).with_init(vec![Word(1); 10]);
        assert_eq!(lo.init.len(), PHYS_REGISTERS);
    }

    #[test]
    fn unbind_writes_back_live_state() {
        let lo = compute_obj(1).with_init(vec![Word(7)]);
        let mut b = BoundObject::bind(lo);
        b.regs[0] = Word(99);
        let recovered = b.unbind();
        assert_eq!(recovered.init[0], Word(99));
        // Re-binding resumes from the written-back state.
        let b2 = BoundObject::bind(recovered);
        assert_eq!(b2.regs[0], Word(99));
    }

    #[test]
    fn kind_validation() {
        let bad_mem = LogicalObject::memory(ObjectId(1), LocalConfig::op(Operation::IAdd));
        assert!(bad_mem.validate().is_err());
        let bad_compute = LogicalObject::compute(ObjectId(2), LocalConfig::op(Operation::Load));
        assert!(bad_compute.validate().is_err());
        let good_mem = LogicalObject::memory(ObjectId(3), LocalConfig::op(Operation::Load));
        assert!(good_mem.validate().is_ok());
    }

    #[test]
    fn physical_object_bind_unbind() {
        let mut pe = PhysicalObject::new(PhysSlot(0), ObjectKind::Compute);
        assert!(!pe.is_bound());
        pe.bind(compute_obj(5)).unwrap();
        assert_eq!(pe.bound_id(), Some(ObjectId(5)));
        // Double-bind is rejected.
        assert_eq!(
            pe.bind(compute_obj(6)),
            Err(ObjectError::SlotOccupied(PhysSlot(0)))
        );
        let lo = pe.unbind().unwrap();
        assert_eq!(lo.id, ObjectId(5));
        assert_eq!(pe.unbind(), Err(ObjectError::SlotEmpty(PhysSlot(0))));
    }

    #[test]
    fn kind_mismatch_on_bind() {
        let mut mem_pe = PhysicalObject::new(PhysSlot(1), ObjectKind::Memory);
        assert!(mem_pe.bind(compute_obj(1)).is_err());
        let mem_obj = LogicalObject::memory(ObjectId(2), LocalConfig::op(Operation::Load));
        assert!(mem_pe.bind(mem_obj).is_ok());
    }
}

//! Identifier newtypes used across the whole processor model.
//!
//! The paper's global configuration stream refers to objects purely by ID
//! (§2.1: "in a global configuration data stream, the dependency is
//! represented by the ID"). Keeping IDs as 32-bit newtypes keeps the hot
//! types that carry them small and makes it impossible to confuse a logical
//! object ID with a physical slot index.

use std::fmt;

/// Identifier of a *logical* object — the name the application uses.
///
/// Logical objects move: they are loaded from the library, enter the object
/// space through a stack shift, percolate down the stack, and are eventually
/// swapped out. Their ID is the only stable handle.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// Returns the raw index value.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// Index of a *physical* object (a processing-element slot in the array).
///
/// Slot 0 is the **top of the stack**: the deterministic placement position
/// of the adaptive processor (§2.4). Higher indices are deeper in the stack;
/// the bottom-most slots hold the LRU replacement candidates.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PhysSlot(pub u32);

impl PhysSlot {
    /// Returns the raw index value.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PhysSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot{}", self.0)
    }
}

/// Input-port index on an object.
///
/// The paper evaluates a one-source model and mentions a two-source model
/// (§2.6.1, Figure 3 caption); the execution fabric of this reproduction
/// supports up to two value inputs plus one predicate input.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PortIndex(pub u8);

impl PortIndex {
    /// First value operand.
    pub const LHS: PortIndex = PortIndex(0);
    /// Second value operand.
    pub const RHS: PortIndex = PortIndex(1);
    /// Predicate operand of steering operations.
    pub const PRED: PortIndex = PortIndex(2);

    /// Returns the raw index value.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PortIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "port{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(ObjectId(1) < ObjectId(2));
        assert!(PhysSlot(0) < PhysSlot(7));
    }

    #[test]
    fn display_forms() {
        assert_eq!(ObjectId(3).to_string(), "obj3");
        assert_eq!(PhysSlot(4).to_string(), "slot4");
        assert_eq!(PortIndex::RHS.to_string(), "port1");
    }

    #[test]
    fn ids_stay_small() {
        // These IDs sit inside every stream element and channel request;
        // keep them one word or less.
        assert!(std::mem::size_of::<ObjectId>() <= 4);
        assert!(std::mem::size_of::<Option<ObjectId>>() <= 8);
    }
}

//! The ISA-free operation set of the execution fabric.
//!
//! An adaptive processor has no instruction-set architecture (§1: "an AP
//! does not require an instruction-set architecture in its basic model").
//! What a physical object *does* is fixed by its local configuration data:
//! one operation from the fabric below, applied to the tokens arriving on
//! its input ports.
//!
//! The operation set mirrors the hardware inventory of Table 1:
//! 64-bit floating-point multiply/add, floating-point divide, integer
//! multiply + ALU/shift, integer divide, and the register file — plus the
//! dataflow plumbing (constants, pass, steer, merge) that the Figure 7
//! example requires, and load/store for memory objects.

use crate::value::Word;
use std::fmt;

/// Which Table 1 / Table 2 hardware module an operation occupies.
///
/// Used by the cost model to reason about fabric utilisation and by the
/// latency model below.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OpCategory {
    /// 64-bit floating-point multiplier/adder (Table 1, `64b fMul, fAdd`).
    FloatMulAdd,
    /// 64-bit floating-point divider (Table 1, `64b fDiv`).
    FloatDiv,
    /// 64-bit integer multiplier + ALU/shifter (Table 1, `64b iMul + iALU/Shift`).
    IntMulAlu,
    /// 64-bit integer divider (Table 1, `64b iDiv`).
    IntDiv,
    /// Register-file-only operations (constants, pass, steer, merge).
    Register,
    /// Memory-block operations (Table 2 fabric: load/store ports).
    Memory,
}

/// A single operation performed by a configured object.
///
/// Integer comparisons produce canonical predicates ([`Word::TRUE`] /
/// [`Word::FALSE`]). Division by zero is defined (it produces zero) so that
/// a datapath never traps: the paper's fabric has no exception machinery, and
/// a deterministic result keeps simulation reproducible.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Operation {
    // --- integer ALU ------------------------------------------------------
    /// Wrapping integer addition.
    IAdd,
    /// Wrapping integer subtraction.
    ISub,
    /// Wrapping integer multiplication.
    IMul,
    /// Signed integer division (0 when the divisor is 0).
    IDiv,
    /// Signed integer remainder (0 when the divisor is 0).
    IRem,
    /// Bitwise AND.
    IAnd,
    /// Bitwise OR.
    IOr,
    /// Bitwise XOR.
    IXor,
    /// Bitwise NOT (unary).
    INot,
    /// Logical shift left (shift amount taken modulo 64).
    IShl,
    /// Logical shift right (shift amount taken modulo 64).
    IShr,
    /// Arithmetic shift right (shift amount taken modulo 64).
    ISar,
    /// Signed less-than, producing a predicate.
    ICmpLt,
    /// Equality, producing a predicate.
    ICmpEq,
    /// Signed greater-than, producing a predicate.
    ICmpGt,
    /// Signed minimum.
    IMin,
    /// Signed maximum.
    IMax,
    // --- floating point ----------------------------------------------------
    /// IEEE-754 double addition.
    FAdd,
    /// IEEE-754 double subtraction.
    FSub,
    /// IEEE-754 double multiplication.
    FMul,
    /// IEEE-754 double division.
    FDiv,
    /// IEEE-754 double negation (unary).
    FNeg,
    /// Floating less-than, producing a predicate.
    FCmpLt,
    /// Fused multiply-add `lhs * rhs + imm` (imm from local configuration).
    FMulAddImm,
    // --- register / plumbing ----------------------------------------------
    /// Produces the immediate from the local configuration (no inputs).
    Const,
    /// Identity; forwards its single input.
    Pass,
    /// Adds the immediate from the local configuration to the input.
    AddImm,
    /// Multiplies the input by the immediate from the local configuration.
    MulImm,
    /// Forwards the value input only when the predicate input is *true*.
    SteerTrue,
    /// Forwards the value input only when the predicate input is *false*.
    SteerFalse,
    /// Forwards whichever of the two inputs arrives (non-deterministic merge
    /// resolved deterministically as lhs-first in this model).
    Merge,
    // --- memory ------------------------------------------------------------
    /// Reads the memory word addressed by the input (memory objects only).
    Load,
    /// Writes the rhs input to the address given by the lhs input
    /// (memory objects only).
    Store,
}

impl Operation {
    /// Number of value input ports the operation consumes (0, 1 or 2).
    ///
    /// Steering operations additionally consume one token on the predicate
    /// port; see [`Operation::uses_predicate`].
    pub fn arity(self) -> usize {
        use Operation::*;
        match self {
            Const => 0,
            Pass | INot | FNeg | AddImm | MulImm | Load | SteerTrue | SteerFalse => 1,
            IAdd | ISub | IMul | IDiv | IRem | IAnd | IOr | IXor | IShl | IShr | ISar | ICmpLt
            | ICmpEq | ICmpGt | IMin | IMax | FAdd | FSub | FMul | FDiv | FCmpLt | FMulAddImm
            | Merge | Store => 2,
        }
    }

    /// Whether the operation also reads the predicate port.
    pub fn uses_predicate(self) -> bool {
        matches!(self, Operation::SteerTrue | Operation::SteerFalse)
    }

    /// The hardware module the operation occupies.
    pub fn category(self) -> OpCategory {
        use Operation::*;
        match self {
            FAdd | FSub | FMul | FNeg | FCmpLt | FMulAddImm => OpCategory::FloatMulAdd,
            FDiv => OpCategory::FloatDiv,
            IAdd | ISub | IMul | IAnd | IOr | IXor | INot | IShl | IShr | ISar | ICmpLt
            | ICmpEq | ICmpGt | IMin | IMax | AddImm | MulImm => OpCategory::IntMulAlu,
            IDiv | IRem => OpCategory::IntDiv,
            Const | Pass | SteerTrue | SteerFalse | Merge => OpCategory::Register,
            Load | Store => OpCategory::Memory,
        }
    }

    /// Execution latency in fabric cycles.
    ///
    /// The paper gives no per-operation latencies (its §4 delay analysis is
    /// dominated by the global wire), so these are conventional pipelined
    /// FU depths: 1 for ALU/register moves, 3 for multipliers, and iterative
    /// (non-pipelined) depths for the dividers.
    pub fn latency(self) -> u32 {
        use Operation::*;
        match self {
            Const | Pass | SteerTrue | SteerFalse | Merge => 1,
            IAdd | ISub | IAnd | IOr | IXor | INot | IShl | IShr | ISar | ICmpLt | ICmpEq
            | ICmpGt | IMin | IMax | AddImm => 1,
            IMul | MulImm => 3,
            FAdd | FSub | FCmpLt | FNeg => 3,
            FMul | FMulAddImm => 4,
            IDiv | IRem => 12,
            FDiv => 16,
            Load | Store => 2,
        }
    }

    /// Whether this operation may only be configured onto a memory object.
    pub fn is_memory_op(self) -> bool {
        matches!(self, Operation::Load | Operation::Store)
    }

    /// Evaluates the operation.
    ///
    /// `lhs`/`rhs` are the value operands (ignored beyond [`Self::arity`]),
    /// `imm` is the immediate from the local configuration. Steering and
    /// memory operations are *not* evaluated here — they need port/memory
    /// context and are handled by the datapath engine — and return `None`.
    pub fn eval(self, lhs: Word, rhs: Word, imm: Word) -> Option<Word> {
        use Operation::*;
        let w = |v: u64| Some(Word(v));
        let i = |v: i64| Some(Word::from_i64(v));
        let f = |v: f64| Some(Word::from_f64(v));
        let b = |v: bool| Some(Word::from_bool(v));
        match self {
            IAdd => w(lhs.0.wrapping_add(rhs.0)),
            ISub => w(lhs.0.wrapping_sub(rhs.0)),
            IMul => w(lhs.0.wrapping_mul(rhs.0)),
            IDiv => i(if rhs.as_i64() == 0 {
                0
            } else {
                lhs.as_i64().wrapping_div(rhs.as_i64())
            }),
            IRem => i(if rhs.as_i64() == 0 {
                0
            } else {
                lhs.as_i64().wrapping_rem(rhs.as_i64())
            }),
            IAnd => w(lhs.0 & rhs.0),
            IOr => w(lhs.0 | rhs.0),
            IXor => w(lhs.0 ^ rhs.0),
            INot => w(!lhs.0),
            IShl => w(lhs.0.wrapping_shl(rhs.0 as u32)),
            IShr => w(lhs.0.wrapping_shr(rhs.0 as u32)),
            ISar => i(lhs.as_i64().wrapping_shr(rhs.0 as u32)),
            ICmpLt => b(lhs.as_i64() < rhs.as_i64()),
            ICmpEq => b(lhs.0 == rhs.0),
            ICmpGt => b(lhs.as_i64() > rhs.as_i64()),
            IMin => i(lhs.as_i64().min(rhs.as_i64())),
            IMax => i(lhs.as_i64().max(rhs.as_i64())),
            FAdd => f(lhs.as_f64() + rhs.as_f64()),
            FSub => f(lhs.as_f64() - rhs.as_f64()),
            FMul => f(lhs.as_f64() * rhs.as_f64()),
            FDiv => f(lhs.as_f64() / rhs.as_f64()),
            FNeg => f(-lhs.as_f64()),
            FCmpLt => b(lhs.as_f64() < rhs.as_f64()),
            FMulAddImm => f(lhs.as_f64() * rhs.as_f64() + imm.as_f64()),
            Const => Some(imm),
            Pass => Some(lhs),
            AddImm => w(lhs.0.wrapping_add(imm.0)),
            MulImm => w(lhs.0.wrapping_mul(imm.0)),
            Merge => Some(lhs),
            SteerTrue | SteerFalse | Load | Store => None,
        }
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self)
    }
}

/// All operations, for exhaustive sweeps in tests and benches.
pub const ALL_OPERATIONS: &[Operation] = &[
    Operation::IAdd,
    Operation::ISub,
    Operation::IMul,
    Operation::IDiv,
    Operation::IRem,
    Operation::IAnd,
    Operation::IOr,
    Operation::IXor,
    Operation::INot,
    Operation::IShl,
    Operation::IShr,
    Operation::ISar,
    Operation::ICmpLt,
    Operation::ICmpEq,
    Operation::ICmpGt,
    Operation::IMin,
    Operation::IMax,
    Operation::FAdd,
    Operation::FSub,
    Operation::FMul,
    Operation::FDiv,
    Operation::FNeg,
    Operation::FCmpLt,
    Operation::FMulAddImm,
    Operation::Const,
    Operation::Pass,
    Operation::AddImm,
    Operation::MulImm,
    Operation::SteerTrue,
    Operation::SteerFalse,
    Operation::Merge,
    Operation::Load,
    Operation::Store,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_arithmetic() {
        let w = |v: i64| Word::from_i64(v);
        assert_eq!(Operation::IAdd.eval(w(2), w(3), Word::ZERO), Some(w(5)));
        assert_eq!(Operation::ISub.eval(w(2), w(3), Word::ZERO), Some(w(-1)));
        assert_eq!(Operation::IMul.eval(w(-4), w(3), Word::ZERO), Some(w(-12)));
        assert_eq!(Operation::IDiv.eval(w(7), w(2), Word::ZERO), Some(w(3)));
        assert_eq!(Operation::IRem.eval(w(7), w(2), Word::ZERO), Some(w(1)));
        assert_eq!(Operation::IMin.eval(w(-1), w(1), Word::ZERO), Some(w(-1)));
        assert_eq!(Operation::IMax.eval(w(-1), w(1), Word::ZERO), Some(w(1)));
    }

    #[test]
    fn division_by_zero_is_total() {
        let w = |v: i64| Word::from_i64(v);
        assert_eq!(Operation::IDiv.eval(w(7), w(0), Word::ZERO), Some(w(0)));
        assert_eq!(Operation::IRem.eval(w(7), w(0), Word::ZERO), Some(w(0)));
    }

    #[test]
    fn wrapping_behaviour() {
        assert_eq!(
            Operation::IAdd.eval(Word(u64::MAX), Word(1), Word::ZERO),
            Some(Word(0))
        );
        assert_eq!(
            Operation::IDiv.eval(Word::from_i64(i64::MIN), Word::from_i64(-1), Word::ZERO),
            Some(Word::from_i64(i64::MIN)) // wrapping_div semantics
        );
    }

    #[test]
    fn float_arithmetic() {
        let f = |v: f64| Word::from_f64(v);
        assert_eq!(
            Operation::FAdd.eval(f(1.5), f(2.5), Word::ZERO),
            Some(f(4.0))
        );
        assert_eq!(
            Operation::FMul.eval(f(3.0), f(-2.0), Word::ZERO),
            Some(f(-6.0))
        );
        assert_eq!(
            Operation::FMulAddImm.eval(f(3.0), f(2.0), f(1.0)),
            Some(f(7.0))
        );
        assert_eq!(
            Operation::FCmpLt.eval(f(1.0), f(2.0), Word::ZERO),
            Some(Word::TRUE)
        );
    }

    #[test]
    fn shifts_mask_their_amount() {
        assert_eq!(
            Operation::IShl.eval(Word(1), Word(65), Word::ZERO),
            Some(Word(2))
        );
        assert_eq!(
            Operation::ISar.eval(Word::from_i64(-8), Word(1), Word::ZERO),
            Some(Word::from_i64(-4))
        );
    }

    #[test]
    fn comparisons_are_canonical_predicates() {
        let w = |v: i64| Word::from_i64(v);
        assert_eq!(
            Operation::ICmpLt.eval(w(-5), w(3), Word::ZERO),
            Some(Word::TRUE)
        );
        assert_eq!(
            Operation::ICmpGt.eval(w(-5), w(3), Word::ZERO),
            Some(Word::FALSE)
        );
        assert_eq!(
            Operation::ICmpEq.eval(w(3), w(3), Word::ZERO),
            Some(Word::TRUE)
        );
    }

    #[test]
    fn immediates() {
        assert_eq!(
            Operation::Const.eval(Word::ZERO, Word::ZERO, Word(42)),
            Some(Word(42))
        );
        assert_eq!(
            Operation::AddImm.eval(Word(1), Word::ZERO, Word(41)),
            Some(Word(42))
        );
        assert_eq!(
            Operation::MulImm.eval(Word(6), Word::ZERO, Word(7)),
            Some(Word(42))
        );
    }

    #[test]
    fn steering_and_memory_need_context() {
        for op in [
            Operation::SteerTrue,
            Operation::SteerFalse,
            Operation::Load,
            Operation::Store,
        ] {
            assert_eq!(op.eval(Word(1), Word(2), Word(3)), None);
        }
    }

    #[test]
    fn arity_matches_eval_usage() {
        // Every non-context operation with arity 0 must ignore lhs/rhs.
        assert_eq!(
            Operation::Const.eval(Word(9), Word(9), Word(1)),
            Operation::Const.eval(Word(0), Word(0), Word(1))
        );
        // Unary ops must ignore rhs.
        assert_eq!(
            Operation::INot.eval(Word(0), Word(1), Word::ZERO),
            Operation::INot.eval(Word(0), Word(7), Word::ZERO)
        );
    }

    #[test]
    fn categories_cover_table1_modules() {
        use std::collections::HashSet;
        let cats: HashSet<_> = ALL_OPERATIONS.iter().map(|o| o.category()).collect();
        assert!(cats.contains(&OpCategory::FloatMulAdd));
        assert!(cats.contains(&OpCategory::FloatDiv));
        assert!(cats.contains(&OpCategory::IntMulAlu));
        assert!(cats.contains(&OpCategory::IntDiv));
        assert!(cats.contains(&OpCategory::Register));
        assert!(cats.contains(&OpCategory::Memory));
    }

    #[test]
    fn latencies_are_positive_and_dividers_are_iterative() {
        for op in ALL_OPERATIONS {
            assert!(op.latency() >= 1, "{op} must take at least a cycle");
        }
        assert!(Operation::IDiv.latency() > Operation::IMul.latency());
        assert!(Operation::FDiv.latency() > Operation::FMul.latency());
    }

    #[test]
    fn memory_ops_flagged() {
        assert!(Operation::Load.is_memory_op());
        assert!(Operation::Store.is_memory_op());
        assert!(!Operation::IAdd.is_memory_op());
    }

    #[test]
    fn predicate_usage() {
        assert!(Operation::SteerTrue.uses_predicate());
        assert!(Operation::SteerFalse.uses_predicate());
        assert!(!Operation::Merge.uses_predicate());
    }
}

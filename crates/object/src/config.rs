//! Two-level configuration data (paper §2.1).
//!
//! *Local* configuration data programs one physical object. *Global*
//! configuration data chains objects: each element names a **sink** object
//! and its **source** objects, so the stream *is* the dependency graph of
//! the application, expressed in object IDs.
//!
//! §2.4 connects the stream to caching: the distance between a request for
//! an object and the previous request that brought it on chip — the
//! **dependency distance** — equals the stack distance of the CACHE model,
//! and a hit is guaranteed exactly when that distance is at most the array
//! capacity `C`. [`GlobalConfigStream::dependency_distances`] computes those
//! distances so workloads can be characterised before they run.

use crate::id::ObjectId;
use crate::op::Operation;
use crate::value::Word;
use std::collections::HashMap;

/// Local configuration data: what one physical object is programmed to do.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct LocalConfig {
    /// The operation the execution fabric performs.
    pub op: Operation,
    /// Immediate operand for `Const`/`AddImm`/`MulImm`/`FMulAddImm`.
    pub imm: Word,
}

impl LocalConfig {
    /// Configuration for an operation without an immediate.
    pub fn op(op: Operation) -> LocalConfig {
        LocalConfig {
            op,
            imm: Word::ZERO,
        }
    }

    /// Configuration for an operation with an immediate.
    pub fn with_imm(op: Operation, imm: Word) -> LocalConfig {
        LocalConfig { op, imm }
    }
}

/// One element of the global configuration data stream.
///
/// "Chaining between operators is defined through the global configuration
/// data which consists of a sink object ID and source IDs" (§2.1). The
/// fabric supports at most two value sources plus an optional predicate
/// source for steering objects.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GlobalConfigElement {
    /// The object whose inputs are being chained.
    pub sink: ObjectId,
    /// Source feeding the sink's first value port, if any.
    pub src_lhs: Option<ObjectId>,
    /// Source feeding the sink's second value port, if any.
    pub src_rhs: Option<ObjectId>,
    /// Source feeding the sink's predicate port, if any.
    pub src_pred: Option<ObjectId>,
}

impl GlobalConfigElement {
    /// Element with no sources (an input/constant object entering the
    /// working set).
    pub fn nullary(sink: ObjectId) -> GlobalConfigElement {
        GlobalConfigElement {
            sink,
            src_lhs: None,
            src_rhs: None,
            src_pred: None,
        }
    }

    /// One-source element (the model evaluated in Figure 3).
    pub fn unary(sink: ObjectId, src: ObjectId) -> GlobalConfigElement {
        GlobalConfigElement {
            sink,
            src_lhs: Some(src),
            src_rhs: None,
            src_pred: None,
        }
    }

    /// Two-source element.
    pub fn binary(sink: ObjectId, lhs: ObjectId, rhs: ObjectId) -> GlobalConfigElement {
        GlobalConfigElement {
            sink,
            src_lhs: Some(lhs),
            src_rhs: Some(rhs),
            src_pred: None,
        }
    }

    /// Adds a predicate source (for steering sinks).
    pub fn with_pred(mut self, pred: ObjectId) -> GlobalConfigElement {
        self.src_pred = Some(pred);
        self
    }

    /// Iterates over the element's source IDs in port order.
    pub fn sources(&self) -> impl Iterator<Item = ObjectId> + '_ {
        [self.src_lhs, self.src_rhs, self.src_pred]
            .into_iter()
            .flatten()
    }

    /// All object IDs the element references (sink first, then sources) —
    /// the request order of the AP pipeline.
    pub fn referenced(&self) -> impl Iterator<Item = ObjectId> + '_ {
        std::iter::once(self.sink).chain(self.sources())
    }
}

/// The global configuration data stream for one application datapath.
///
/// ```
/// use vlsi_object::{GlobalConfigElement, GlobalConfigStream, ObjectId};
///
/// // A 3-stage chain: 0 -> 1 -> 2, then 0 is reused.
/// let stream: GlobalConfigStream = [
///     GlobalConfigElement::unary(ObjectId(1), ObjectId(0)),
///     GlobalConfigElement::unary(ObjectId(2), ObjectId(1)),
///     GlobalConfigElement::unary(ObjectId(3), ObjectId(0)),
/// ]
/// .into_iter()
/// .collect();
/// assert_eq!(stream.working_set().len(), 4);
/// // The reuse of object 0 has a finite stack distance; an array of that
/// // capacity streams the datapath without object-cache misses.
/// let c = stream.min_streaming_capacity();
/// let (hits, total) = stream.hit_count(c);
/// assert_eq!(total - hits, stream.working_set().len()); // only compulsory misses
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct GlobalConfigStream {
    elements: Vec<GlobalConfigElement>,
}

impl GlobalConfigStream {
    /// Creates an empty stream.
    pub fn new() -> GlobalConfigStream {
        GlobalConfigStream::default()
    }

    /// Creates a stream from elements.
    pub fn from_elements(elements: Vec<GlobalConfigElement>) -> GlobalConfigStream {
        GlobalConfigStream { elements }
    }

    /// Appends an element.
    pub fn push(&mut self, e: GlobalConfigElement) {
        self.elements.push(e);
    }

    /// The elements in stream order.
    pub fn elements(&self) -> &[GlobalConfigElement] {
        &self.elements
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// The set of distinct object IDs referenced by the stream — the
    /// application's working set in the sense of Denning, which must fit the
    /// array capacity `C` for streaming operation (§2.5).
    pub fn working_set(&self) -> Vec<ObjectId> {
        let mut seen = HashMap::new();
        let mut out = Vec::new();
        for e in &self.elements {
            for id in e.referenced() {
                seen.entry(id).or_insert_with(|| out.push(id));
            }
        }
        out
    }

    /// Dependency distances of every object reference in request order.
    ///
    /// For each reference to an object, the distance is the number of
    /// *distinct* other objects referenced since the previous reference to
    /// the same object — i.e. the Mattson stack distance under LRU. The
    /// first reference to an object has no finite distance and is reported
    /// as `None` (a compulsory object-cache miss).
    ///
    /// §2.4: "To make a hit always occur, the stack distance has to be less
    /// than or equal to C" — so `max` of the finite distances is the minimum
    /// array capacity at which the datapath streams without object misses.
    pub fn dependency_distances(&self) -> Vec<(ObjectId, Option<usize>)> {
        // LRU stack: most recent at the front.
        let mut stack: Vec<ObjectId> = Vec::new();
        let mut out = Vec::new();
        for e in &self.elements {
            for id in e.referenced() {
                let pos = stack.iter().position(|&x| x == id);
                match pos {
                    Some(p) => {
                        out.push((id, Some(p)));
                        stack.remove(p);
                    }
                    None => out.push((id, None)),
                }
                stack.insert(0, id);
            }
        }
        out
    }

    /// The smallest array capacity `C` such that every non-compulsory
    /// reference hits (max finite dependency distance + 1), or 0 for an
    /// empty stream.
    pub fn min_streaming_capacity(&self) -> usize {
        if self.is_empty() {
            return 0;
        }
        match self
            .dependency_distances()
            .iter()
            .filter_map(|(_, d)| *d)
            .max()
        {
            Some(d) => d + 1,
            None => 1, // only compulsory misses: one slot suffices
        }
    }

    /// Denning's working-set curve (the paper cites the working-set model
    /// \[9\]): for each window length `tau`, the average number of distinct
    /// objects referenced in any `tau` consecutive references. Returns
    /// `ws(tau)` for `tau` in `1..=max_tau`.
    ///
    /// The curve's knee tells an application designer "the optimal amount
    /// of resources" (§1) to request for this datapath.
    pub fn working_set_curve(&self, max_tau: usize) -> Vec<f64> {
        let refs: Vec<ObjectId> = self
            .elements
            .iter()
            .flat_map(|e| e.referenced().collect::<Vec<_>>())
            .collect();
        let n = refs.len();
        let mut curve = Vec::with_capacity(max_tau);
        for tau in 1..=max_tau {
            if n == 0 {
                curve.push(0.0);
                continue;
            }
            let mut total = 0usize;
            let mut windows = 0usize;
            let mut counts: HashMap<ObjectId, usize> = HashMap::new();
            let mut distinct = 0usize;
            for i in 0..n {
                let c = counts.entry(refs[i]).or_insert(0);
                if *c == 0 {
                    distinct += 1;
                }
                *c += 1;
                if i + 1 >= tau {
                    total += distinct;
                    windows += 1;
                    let out = refs[i + 1 - tau];
                    let c = counts.get_mut(&out).expect("in window");
                    *c -= 1;
                    if *c == 0 {
                        distinct -= 1;
                    }
                }
            }
            if windows == 0 {
                // Stream shorter than the window: one partial window.
                curve.push(self.working_set().len() as f64);
            } else {
                curve.push(total as f64 / windows as f64);
            }
        }
        curve
    }

    /// Counts object-cache hits for a given capacity using the stack
    /// distances (hit iff distance < capacity). Returns `(hits, total)`.
    pub fn hit_count(&self, capacity: usize) -> (usize, usize) {
        let d = self.dependency_distances();
        let hits = d
            .iter()
            .filter(|(_, dist)| matches!(dist, Some(p) if *p < capacity))
            .count();
        (hits, d.len())
    }
}

impl FromIterator<GlobalConfigElement> for GlobalConfigStream {
    fn from_iter<T: IntoIterator<Item = GlobalConfigElement>>(iter: T) -> Self {
        GlobalConfigStream {
            elements: iter.into_iter().collect(),
        }
    }
}

/// Fluent construction of global configuration streams.
///
/// ```
/// use vlsi_object::{ObjectId, StreamBuilder};
///
/// let id = ObjectId;
/// let stream = StreamBuilder::new()
///     .chain(id(1), id(0))            // 0 -> 1
///     .chain2(id(3), id(1), id(2))    // (1, 2) -> 3
///     .steer(id(4), id(3), id(2))     // 3 -> 4 gated by predicate 2
///     .store(id(1001), id(4))         // data-port write
///     .build();
/// assert_eq!(stream.len(), 4);
/// assert_eq!(stream.elements()[3].src_rhs, Some(id(4)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct StreamBuilder {
    elements: Vec<GlobalConfigElement>,
}

impl StreamBuilder {
    /// An empty builder.
    pub fn new() -> StreamBuilder {
        StreamBuilder::default()
    }

    /// Adds a source-less element (requests the object into the working
    /// set).
    pub fn request(mut self, sink: ObjectId) -> StreamBuilder {
        self.elements.push(GlobalConfigElement::nullary(sink));
        self
    }

    /// Chains `src -> sink` (one-source element).
    pub fn chain(mut self, sink: ObjectId, src: ObjectId) -> StreamBuilder {
        self.elements.push(GlobalConfigElement::unary(sink, src));
        self
    }

    /// Chains `(lhs, rhs) -> sink` (two-source element).
    pub fn chain2(mut self, sink: ObjectId, lhs: ObjectId, rhs: ObjectId) -> StreamBuilder {
        self.elements
            .push(GlobalConfigElement::binary(sink, lhs, rhs));
        self
    }

    /// Chains a steering sink: `value -> sink` gated by `pred`.
    pub fn steer(mut self, sink: ObjectId, value: ObjectId, pred: ObjectId) -> StreamBuilder {
        self.elements
            .push(GlobalConfigElement::unary(sink, value).with_pred(pred));
        self
    }

    /// Chains a store-stream sink: `data` into the memory object's data
    /// (rhs) port, leaving the address port to the auto-increment stream.
    pub fn store(mut self, sink: ObjectId, data: ObjectId) -> StreamBuilder {
        self.elements.push(GlobalConfigElement {
            sink,
            src_lhs: None,
            src_rhs: Some(data),
            src_pred: None,
        });
        self
    }

    /// Finishes the stream.
    pub fn build(self) -> GlobalConfigStream {
        GlobalConfigStream {
            elements: self.elements,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(v: u32) -> ObjectId {
        ObjectId(v)
    }

    #[test]
    fn element_constructors() {
        let e = GlobalConfigElement::binary(id(3), id(1), id(2)).with_pred(id(0));
        assert_eq!(e.sources().collect::<Vec<_>>(), vec![id(1), id(2), id(0)]);
        assert_eq!(
            e.referenced().collect::<Vec<_>>(),
            vec![id(3), id(1), id(2), id(0)]
        );
    }

    #[test]
    fn working_set_is_distinct_in_first_reference_order() {
        let s: GlobalConfigStream = [
            GlobalConfigElement::unary(id(1), id(0)),
            GlobalConfigElement::unary(id(2), id(1)),
            GlobalConfigElement::unary(id(1), id(2)),
        ]
        .into_iter()
        .collect();
        assert_eq!(s.working_set(), vec![id(1), id(0), id(2)]);
    }

    #[test]
    fn first_reference_is_compulsory_miss() {
        let s: GlobalConfigStream = [GlobalConfigElement::unary(id(1), id(0))]
            .into_iter()
            .collect();
        let d = s.dependency_distances();
        assert_eq!(d, vec![(id(1), None), (id(0), None)]);
    }

    #[test]
    fn repeated_reference_has_stack_distance() {
        // Reference order: 1, 0, 2, 1  -> when 1 recurs, {0, 2} intervene.
        let s: GlobalConfigStream = [
            GlobalConfigElement::unary(id(1), id(0)),
            GlobalConfigElement::unary(id(2), id(1)),
        ]
        .into_iter()
        .collect();
        let d = s.dependency_distances();
        assert_eq!(d[0], (id(1), None));
        assert_eq!(d[1], (id(0), None));
        assert_eq!(d[2], (id(2), None));
        assert_eq!(d[3], (id(1), Some(2)));
    }

    #[test]
    fn immediate_reuse_has_distance_zero() {
        let s: GlobalConfigStream = [GlobalConfigElement::unary(id(5), id(5))]
            .into_iter()
            .collect();
        let d = s.dependency_distances();
        assert_eq!(d[1], (id(5), Some(0)));
    }

    #[test]
    fn min_streaming_capacity_bounds_hits() {
        let s: GlobalConfigStream = [
            GlobalConfigElement::unary(id(1), id(0)),
            GlobalConfigElement::unary(id(2), id(1)),
            GlobalConfigElement::unary(id(0), id(2)),
            GlobalConfigElement::unary(id(1), id(0)),
        ]
        .into_iter()
        .collect();
        let c = s.min_streaming_capacity();
        let (hits, total) = s.hit_count(c);
        // At capacity C every non-compulsory reference hits.
        let compulsory = s.working_set().len();
        assert_eq!(hits, total - compulsory);
        // At a smaller capacity, some reuse must miss.
        if c > 1 {
            let (hits_small, _) = s.hit_count(c - 1);
            assert!(hits_small < hits);
        }
    }

    #[test]
    fn hit_count_monotone_in_capacity() {
        let s: GlobalConfigStream = (0..32)
            .map(|i| GlobalConfigElement::unary(id(i % 7), id((i + 3) % 7)))
            .collect();
        let mut last = 0;
        for c in 0..8 {
            let (h, _) = s.hit_count(c);
            assert!(h >= last, "hits must be monotone in capacity (inclusion)");
            last = h;
        }
    }

    #[test]
    fn working_set_curve_is_monotone_and_saturates() {
        let s: GlobalConfigStream = (0..40)
            .map(|i| GlobalConfigElement::unary(id(i % 5), id((i + 1) % 5)))
            .collect();
        let curve = s.working_set_curve(30);
        // Monotone non-decreasing in the window length.
        for w in curve.windows(2) {
            assert!(w[1] + 1e-9 >= w[0], "{curve:?}");
        }
        // Saturates at the total working set (5 distinct objects).
        assert!((curve[29] - 5.0).abs() < 0.5);
        // A window of 1 sees exactly one object.
        assert!((curve[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn working_set_curve_of_empty_stream() {
        assert_eq!(GlobalConfigStream::new().working_set_curve(3), vec![0.0; 3]);
    }

    #[test]
    fn local_config_builders() {
        let c = LocalConfig::with_imm(Operation::AddImm, Word(9));
        assert_eq!(c.op, Operation::AddImm);
        assert_eq!(c.imm, Word(9));
        assert_eq!(LocalConfig::op(Operation::Pass).imm, Word::ZERO);
    }
}

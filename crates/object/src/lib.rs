//! # vlsi-object — the object model of the adaptive processor
//!
//! The adaptive processor (AP) of Takano's *Very Large-Scale Integrated
//! Processor* does not execute instructions. Instead, an application is a
//! *datapath* built out of **objects** (paper §2.1):
//!
//! * a **physical object** is a processing element on the die — an execution
//!   fabric (64-bit integer/floating-point units and a small register file)
//!   that performs whatever its configuration tells it to;
//! * **local configuration data** tells one physical object which operation
//!   to perform;
//! * a **logical object** is the pair of local configuration data and initial
//!   data — the mobile, cacheable unit that the AP swaps between the on-chip
//!   object space and the library in memory blocks;
//! * an **object** is a logical object *bound* onto a physical object;
//! * **global configuration data** chains objects into a datapath. Each
//!   element of the global configuration stream names a sink object and its
//!   source objects, so the stream is nothing more than the dependency
//!   structure of the application.
//!
//! This crate provides those vocabulary types plus the two substrates the
//! objects live next to: the 64 KiB **memory block** (Table 2 of the paper)
//! and the **object library** held inside memory blocks, from which logical
//! objects are loaded on an object-cache miss.
//!
//! Everything here is a deterministic, dependency-free value model; the
//! pipeline that *manages* objects lives in `vlsi-ap`, and the interconnect
//! that *chains* them lives in `vlsi-csd`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod error;
pub mod id;
pub mod library;
pub mod memory;
pub mod object;
pub mod op;
pub mod value;

pub use config::{GlobalConfigElement, GlobalConfigStream, LocalConfig, StreamBuilder};
pub use error::ObjectError;
pub use id::{ObjectId, PhysSlot, PortIndex};
pub use library::ObjectLibrary;
pub use memory::MemoryBlock;
pub use object::{BoundObject, LogicalObject, ObjectKind, PhysicalObject, PHYS_REGISTERS};
pub use op::{OpCategory, Operation};
pub use value::Word;

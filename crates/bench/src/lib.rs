//! # vlsi-bench — regeneration harness for every table and figure
//!
//! One binary per artifact of the paper's evaluation:
//!
//! | artifact | binary | what it prints |
//! |---|---|---|
//! | Table 1 | `table1` | physical-object module areas |
//! | Table 2 | `table2` | memory-block module areas |
//! | Table 3 | `table3` | control-object register areas |
//! | Table 4 | `table4` | APs / wire delay / peak GOPS per year, paper-vs-measured |
//! | Figure 3 | `figure3` | locality vs used channels, `N_object` ∈ {16…256} |
//! | Figure 5 | `figure5_rings` | rings gathered on the S-topology |
//! | all | `experiments` | the full paper-vs-measured summary |
//!
//! Criterion benches (`cargo bench -p vlsi-bench`) time the underlying
//! machinery and run the ablations DESIGN.md calls out: channel
//! provisioning vs routability (A), stack capacity vs hit rate (B), and
//! region size vs configuration latency (C).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod harness;
pub mod hotpath;

use vlsi_csd::{ChannelUsage, CsdSimulator};

/// The Figure 3 sweep: for each array size, measure mean used channels
/// across the locality axis. Points are averaged over `runs` seeds.
/// Returns `(locality, per-size usage)` rows.
pub fn figure3_sweep(
    sizes: &[usize],
    localities: &[f64],
    runs: usize,
    seed: u64,
) -> Vec<(f64, Vec<ChannelUsage>)> {
    localities
        .iter()
        .map(|&loc| {
            // Independent sweep points run concurrently; each simulator
            // run stays single-threaded and deterministic.
            let mut row = Vec::with_capacity(sizes.len());
            std::thread::scope(|s| {
                let handles: Vec<_> = sizes
                    .iter()
                    .map(|&n| s.spawn(move || CsdSimulator::new(n, n).sweep_point(loc, runs, seed)))
                    .collect();
                for h in handles {
                    row.push(h.join().expect("sweep worker"));
                }
            });
            (loc, row)
        })
        .collect()
}

/// Renders the Figure 3 sweep as an aligned text table.
pub fn figure3_text(sizes: &[usize], rows: &[(f64, Vec<ChannelUsage>)]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(
        out,
        "Figure 3: Locality versus Number of Used Channels (one-source model)"
    )
    .unwrap();
    write!(out, "{:>9}", "locality").unwrap();
    for n in sizes {
        write!(out, " {:>9}", format!("N={n}")).unwrap();
    }
    writeln!(out).unwrap();
    for (loc, row) in rows {
        write!(out, "{loc:>9.2}").unwrap();
        for u in row {
            write!(out, " {:>9}", u.used_channels).unwrap();
        }
        writeln!(out).unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_a_row_per_locality() {
        let rows = figure3_sweep(&[16, 32], &[1.0, 0.0], 4, 7);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].1.len(), 2);
        // Random uses more channels than fully local.
        assert!(rows[1].1[1].used_channels > rows[0].1[1].used_channels);
    }

    #[test]
    fn text_rendering() {
        let rows = figure3_sweep(&[16], &[0.5], 2, 1);
        let t = figure3_text(&[16], &rows);
        assert!(t.contains("N=16"));
        assert!(t.contains("0.50"));
    }
}

//! Extends Figure 3 with the models §2.6.2 discusses but does not plot:
//! the two-source model and fan-out (broadcast) traffic.
//!
//! ```text
//! cargo run -p vlsi-bench --bin figure3_extended --release
//! ```

use vlsi_csd::sim::LocalityWorkload;
use vlsi_csd::CsdSimulator;

fn avg<F: Fn(u64) -> usize>(runs: u64, f: F) -> usize {
    let total: usize = (0..runs).map(&f).sum();
    (total as f64 / runs as f64).round() as usize
}

fn main() {
    let sizes = [16usize, 32, 64, 128, 256];
    let localities = [1.0, 0.75, 0.5, 0.25, 0.0];

    println!("Figure 3 extension A: two-source model (channels used)");
    print!("{:>9}", "locality");
    for n in sizes {
        print!(" {:>9}", format!("N={n}"));
    }
    println!();
    for &loc in &localities {
        print!("{loc:>9.2}");
        for &n in &sizes {
            let used = avg(20, |seed| {
                let wl = LocalityWorkload {
                    n_objects: n,
                    locality: loc,
                    seed,
                };
                CsdSimulator::new(n, n)
                    .run(&wl.generate_two_source())
                    .used_channels
            });
            print!(" {used:>9}");
        }
        println!();
    }

    println!("\nFigure 3 extension B: fan-out traffic (random, channels used)");
    print!("{:>9}", "fan-out");
    for n in sizes {
        print!(" {:>9}", format!("N={n}"));
    }
    println!();
    for fanout in [1usize, 2, 4, 8] {
        print!("{fanout:>9}");
        for &n in &sizes {
            let used = avg(20, |seed| {
                let wl = LocalityWorkload {
                    n_objects: n,
                    locality: 0.0,
                    seed,
                };
                CsdSimulator::new(n, n)
                    .run_fanout(&wl.generate_fanout(fanout))
                    .used_channels
            });
            print!(" {used:>9}");
        }
        println!();
    }
    println!(
        "\n§2.6.2's remark quantified: broadcasts push channel demand toward\n\
         N_object; the slack between the one-source N/2 requirement and N\n\
         channels is exactly what 'we can allocate the remaining channels\n\
         to the fan-out' refers to."
    );
}

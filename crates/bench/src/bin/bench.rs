//! `bench` — the BENCH-emitting runner.
//!
//! Executes the sched / faults / hotpath / fleet / cluster / ingest /
//! compile / soa / pipeline workload families and writes
//! `BENCH_sched.json`, `BENCH_faults.json`, `BENCH_hotpath.json`,
//! `BENCH_fleet.json`, `BENCH_cluster.json`, `BENCH_ingest.json`,
//! `BENCH_compile.json`, `BENCH_soa.json`, and `BENCH_pipeline.json`
//! (median ns/iter, ops/s, seed, git rev) so the perf trajectory is
//! machine-readable at the repo root.
//!
//! ```text
//! bench [--smoke] [--threads N] [--out DIR]   run workloads, write + validate JSONs
//! bench --check DIR [--baseline DIR]          validate BENCH_*.json in DIR and
//!       [--check-threshold FRAC]              warn on median regressions beyond
//!       [--check-fatal]                       FRAC (default 0.25) vs the baseline
//!                                             copies; with --check-fatal, any
//!                                             regression beyond FRAC exits 1
//! bench --digest FILE [--threads N]           write deterministic run checksums
//!                                             (no timings) — the thread-matrix
//!                                             CI gate compares these files
//! ```
//!
//! `--smoke` runs a single iteration of each workload — CI uses it to
//! prove the pipeline still runs and emits well-formed documents.
//! `--threads` sizes the worker pool the fleet and sharded-NoC workloads
//! run on; every workload is bit-identical at every thread count, which
//! `--digest` exists to prove.

use vlsi_bench::harness::{
    git_rev, measure, parse_medians, parse_seed, render_json, sample_from_times, validate_json,
    BenchSample,
};
use vlsi_bench::hotpath::{
    chaos_mix, chaos_mix_sized, cluster_4x, compile_corpus, faults_noc, faults_sched, fleet_mix,
    gather_release_churn, ingest_open_loop, noc_storm, sched_acceptance, sched_mix, soa_sweep,
    staged_pipeline, PIPELINE_DATASETS, SEED, SOA_SWEEP_LANES,
};

const FILES: [&str; 9] = [
    "BENCH_sched.json",
    "BENCH_faults.json",
    "BENCH_hotpath.json",
    "BENCH_fleet.json",
    "BENCH_cluster.json",
    "BENCH_ingest.json",
    "BENCH_compile.json",
    "BENCH_soa.json",
    "BENCH_pipeline.json",
];

/// Default for `--check-threshold`: median regressions beyond this
/// fraction draw a (non-fatal) warning.
const DEFAULT_CHECK_THRESHOLD: f64 = 0.25;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut threads = 1usize;
    let mut out_dir = String::from(".");
    let mut baseline_dir = String::from(".");
    let mut check_dir: Option<String> = None;
    let mut check_threshold = DEFAULT_CHECK_THRESHOLD;
    let mut digest_file: Option<String> = None;
    let mut check_fatal = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--check-fatal" => check_fatal = true,
            "--check-threshold" => {
                i += 1;
                check_threshold = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|t: &f64| t.is_finite() && *t >= 0.0)
                    .expect("--check-threshold needs a non-negative fraction, e.g. 0.25");
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--threads needs a positive integer");
            }
            "--out" => {
                i += 1;
                out_dir = args.get(i).expect("--out needs a directory").clone();
            }
            "--baseline" => {
                i += 1;
                baseline_dir = args.get(i).expect("--baseline needs a directory").clone();
            }
            "--check" => {
                i += 1;
                check_dir = Some(args.get(i).expect("--check needs a directory").clone());
            }
            "--digest" => {
                i += 1;
                digest_file = Some(args.get(i).expect("--digest needs a file").clone());
            }
            other => {
                eprintln!("unknown argument {other}");
                eprintln!(
                    "usage: bench [--smoke] [--threads N] [--out DIR] \
                     | bench --check DIR [--baseline DIR] [--check-threshold FRAC] \
                     [--check-fatal] | bench --digest FILE [--threads N]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if let Some(file) = digest_file {
        digest(&file, threads);
        return;
    }
    if let Some(dir) = check_dir {
        check(&dir, &baseline_dir, check_threshold, check_fatal);
        return;
    }

    let iters = if smoke { 1 } else { 5 };
    let rev = git_rev();
    println!(
        "bench: seed {SEED}, rev {rev}, {iters} iteration(s), {threads} thread(s){}",
        if smoke { " [smoke]" } else { "" }
    );

    emit(&out_dir, "sched", SEED, &rev, sched_samples(iters));
    emit(&out_dir, "faults", SEED, &rev, faults_samples(iters));
    emit(&out_dir, "hotpath", SEED, &rev, hotpath_samples(iters));
    emit(&out_dir, "fleet", SEED, &rev, fleet_samples(iters, threads));
    emit(
        &out_dir,
        "cluster",
        SEED,
        &rev,
        cluster_samples(iters, threads),
    );
    emit(
        &out_dir,
        "ingest",
        SEED,
        &rev,
        ingest_samples(iters, threads),
    );
    emit(
        &out_dir,
        "compile",
        SEED,
        &rev,
        compile_samples(iters, threads),
    );
    emit(&out_dir, "soa", SEED, &rev, soa_samples(iters, threads));
    emit(
        &out_dir,
        "pipeline",
        SEED,
        &rev,
        pipeline_samples(iters, threads),
    );
}

fn sched_samples(iters: u64) -> Vec<BenchSample> {
    let mut samples = Vec::new();
    for name in ["fifo", "priority", "backfill"] {
        let (mut s, makespan) =
            measure(&format!("mix48_{name}"), iters, || sched_mix(name).makespan);
        s.extra.push(("makespan", makespan));
        samples.push(s);
    }
    for name in ["fifo", "priority", "backfill"] {
        let mut fnv = 0u64;
        let (mut s, makespan) = measure(&format!("accept55_{name}"), iters, || {
            let (summary, checksum) = sched_acceptance(name);
            fnv = checksum;
            summary.makespan
        });
        s.extra.push(("makespan", makespan));
        s.extra.push(("event_log_fnv", fnv));
        samples.push(s);
    }
    samples
}

fn faults_samples(iters: u64) -> Vec<BenchSample> {
    let mut samples = Vec::new();
    for (tag, rate) in [("0pct", 0.0), ("1pct", 0.01), ("5pct", 0.05)] {
        let mut retrans = 0u64;
        let (mut s, delivered) = measure(&format!("noc_fault_{tag}"), iters, || {
            let (delivered, r) = faults_noc(rate);
            retrans = r;
            delivered as u64
        });
        s.extra.push(("delivered", delivered));
        s.extra.push(("retransmissions", retrans));
        samples.push(s);
    }
    for (tag, rate) in [("0pct", 0.0), ("5pct", 0.05)] {
        let (mut s, makespan) = measure(&format!("sched_fault_{tag}"), iters, || {
            faults_sched(rate).makespan
        });
        s.extra.push(("makespan", makespan));
        samples.push(s);
    }
    samples
}

fn hotpath_samples(iters: u64) -> Vec<BenchSample> {
    let mut samples = Vec::new();
    let (mut s, checksum) = measure("gather_release_churn_32x32", iters, || {
        gather_release_churn(120)
    });
    s.extra.push(("probe_checksum", checksum));
    samples.push(s);
    let mut fnv = 0u64;
    let (mut s, makespan) = measure("chaos_mix_64x64", iters, || {
        let (summary, checksum) = chaos_mix();
        fnv = checksum;
        summary.makespan
    });
    s.extra.push(("makespan", makespan));
    s.extra.push(("event_log_fnv", fnv));
    samples.push(s);
    samples
}

fn fleet_samples(iters: u64, threads: usize) -> Vec<BenchSample> {
    let mut samples = Vec::new();
    let mut checksums = (0u64, 0u64);
    let (mut s, completed) = measure("fleet_64x64x4", iters, || {
        let (completed, events_fnv, telemetry_fnv) = fleet_mix(threads, 4);
        checksums = (events_fnv, telemetry_fnv);
        completed
    });
    s.extra.push(("threads", threads as u64));
    s.extra.push(("completed", completed));
    s.extra.push(("events_fnv", checksums.0));
    s.extra.push(("telemetry_fnv", checksums.1));
    samples.push(s);
    let (mut s, digest) = measure("noc_storm_32x32_sharded", iters, || noc_storm(threads));
    s.extra.push(("threads", threads as u64));
    s.extra.push(("digest_fnv", digest));
    samples.push(s);
    samples
}

fn cluster_samples(iters: u64, threads: usize) -> Vec<BenchSample> {
    let mut samples = Vec::new();
    let mut extras = (0u64, 0u64);
    let (mut s, completed) = measure("cluster_4x_32x32", iters, || {
        let (completed, messages, digest_fnv) = cluster_4x(threads);
        extras = (messages, digest_fnv);
        completed
    });
    s.extra.push(("threads", threads as u64));
    s.extra.push(("completed", completed));
    s.extra.push(("fabric_messages", extras.0));
    s.extra.push(("digest_fnv", extras.1));
    samples.push(s);
    samples
}

fn ingest_samples(iters: u64, threads: usize) -> Vec<BenchSample> {
    let mut samples = Vec::new();
    let mut report = None;
    let (mut s, accepted) = measure("ingest_open_loop_4x", iters, || {
        let r = ingest_open_loop(threads);
        report = Some(r);
        r.accepted
    });
    let r = report.expect("at least one iteration ran");
    s.extra.push(("threads", threads as u64));
    s.extra.push(("arrivals", r.arrivals));
    s.extra.push(("accepted", accepted));
    s.extra.push(("dropped", r.dropped));
    s.extra.push(("completed", r.completed));
    s.extra.push(("sojourn_p50", r.sojourn_p50));
    s.extra.push(("sojourn_p99", r.sojourn_p99));
    s.extra.push(("digest_fnv", r.digest_fnv));
    samples.push(s);
    samples
}

fn compile_samples(iters: u64, threads: usize) -> Vec<BenchSample> {
    let mut samples = Vec::new();
    let mut extras = (0u64, 0u64);
    let (mut s, completed) = measure("compile_corpus_12", iters, || {
        let (graphs, completed, digest_fnv) = compile_corpus(threads);
        extras = (graphs, digest_fnv);
        completed
    });
    s.extra.push(("threads", threads as u64));
    s.extra.push(("graphs", extras.0));
    s.extra.push(("completed", completed));
    s.extra.push(("digest_fnv", extras.1));
    samples.push(s);
    samples
}

fn soa_samples(iters: u64, threads: usize) -> Vec<BenchSample> {
    let mut perap_times = Vec::with_capacity(iters as usize);
    let mut soa_times = Vec::with_capacity(iters as usize);
    let mut last = None;
    for _ in 0..iters {
        let r = soa_sweep(threads, SOA_SWEEP_LANES, 64);
        assert_eq!(
            r.digest_perap, r.digest_soa,
            "SoA region sweep must match the per-AP path bit for bit"
        );
        perap_times.push(r.perap_ns);
        soa_times.push(r.soa_ns);
        last = Some(r);
    }
    let r = last.expect("at least one iteration ran");
    let mut samples = Vec::new();
    let mut s = sample_from_times("soa_sweep_1024ap_perap", perap_times);
    s.extra.push(("lanes", r.lanes));
    s.extra.push(("digest_fnv", r.digest_perap));
    samples.push(s);
    let mut s = sample_from_times("soa_sweep_1024ap_soa", soa_times);
    s.extra.push(("threads", threads as u64));
    s.extra.push(("lanes", r.lanes));
    s.extra.push(("digest_fnv", r.digest_soa));
    samples.push(s);
    let mut fnv = 0u64;
    let (mut s, makespan) = measure("chaos_mix_128x128", iters, || {
        let (summary, checksum) = chaos_mix_sized(128, 40);
        fnv = checksum;
        summary.makespan
    });
    s.extra.push(("makespan", makespan));
    s.extra.push(("event_log_fnv", fnv));
    samples.push(s);
    samples
}

fn pipeline_samples(iters: u64, threads: usize) -> Vec<BenchSample> {
    let mut seq_times = Vec::with_capacity(iters as usize);
    let mut pipe_times = Vec::with_capacity(iters as usize);
    let mut last = None;
    for _ in 0..iters {
        let r = staged_pipeline(threads, PIPELINE_DATASETS);
        assert_eq!(
            r.digest_seq, r.digest_pipe,
            "pipelined outputs must match the sequential walk bit for bit"
        );
        seq_times.push(r.seq_ns);
        pipe_times.push(r.pipe_ns);
        last = Some(r);
    }
    let r = last.expect("at least one iteration ran");
    let total_datasets = r.graphs * r.datasets;
    // datasets/s from the median execution-only time of each path — the
    // headline throughput numbers Ablation IX quotes.
    let median = |mut v: Vec<u64>| -> u64 {
        v.sort_unstable();
        v[v.len() / 2]
    };
    let seq_rate = total_datasets * 1_000_000_000 / median(seq_times.clone()).max(1);
    let pipe_rate = total_datasets * 1_000_000_000 / median(pipe_times.clone()).max(1);
    let mut samples = Vec::new();
    let mut s = sample_from_times("staged_pipeline_seq", seq_times);
    s.extra.push(("graphs", r.graphs));
    s.extra.push(("datasets", total_datasets));
    s.extra.push(("datasets_per_s", seq_rate));
    s.extra.push(("digest_fnv", r.digest_seq));
    samples.push(s);
    let mut s = sample_from_times("staged_pipeline_pipe", pipe_times);
    s.extra.push(("threads", threads as u64));
    s.extra.push(("graphs", r.graphs));
    s.extra.push(("datasets", total_datasets));
    s.extra.push(("datasets_per_s", pipe_rate));
    s.extra
        .push(("utilization_milli_sum", r.utilization_milli_sum));
    s.extra.push(("digest_fnv", r.digest_pipe));
    samples.push(s);
    samples
}

fn emit(dir: &str, bench: &str, seed: u64, rev: &str, samples: Vec<BenchSample>) {
    for s in &samples {
        println!(
            "  {:<28} median {:>12} ns/iter  {:>10.3} ops/s",
            s.name, s.median_ns, s.ops_per_s
        );
    }
    let doc = render_json(bench, seed, rev, &samples);
    validate_json(&doc).unwrap_or_else(|e| panic!("BENCH_{bench}.json failed validation: {e}"));
    std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("creating {dir}: {e}"));
    let path = format!("{dir}/BENCH_{bench}.json");
    std::fs::write(&path, &doc).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("  wrote {path}");
}

/// Writes the deterministic run checksums — no timings, no thread count,
/// no git rev — so two `--digest` runs at different `--threads` values
/// must produce byte-identical files. The CI thread-matrix gate `cmp`s
/// them.
fn digest(file: &str, threads: usize) {
    let (completed, events_fnv, telemetry_fnv) = fleet_mix(threads, 4);
    let storm = noc_storm(threads);
    let (_, accept_fnv) = sched_acceptance("fifo");
    let (_, chaos_fnv) = chaos_mix();
    let (cluster_completed, cluster_msgs, cluster_fnv) = cluster_4x(threads);
    let ingest = ingest_open_loop(threads);
    let (compile_graphs, compile_completed, compile_fnv) = compile_corpus(threads);
    let sweep = soa_sweep(threads, SOA_SWEEP_LANES, 64);
    let (_, chaos128_fnv) = chaos_mix_sized(128, 40);
    let pipe = staged_pipeline(threads, PIPELINE_DATASETS);
    let text = format!(
        "seed {SEED}\n\
         fleet_64x64x4 completed {completed}\n\
         fleet_64x64x4 events_fnv {events_fnv:#018x}\n\
         fleet_64x64x4 telemetry_fnv {telemetry_fnv:#018x}\n\
         noc_storm_32x32_sharded digest_fnv {storm:#018x}\n\
         accept55_fifo event_log_fnv {accept_fnv:#018x}\n\
         chaos_mix_64x64 event_log_fnv {chaos_fnv:#018x}\n\
         cluster_4x_32x32 completed {cluster_completed}\n\
         cluster_4x_32x32 fabric_messages {cluster_msgs}\n\
         cluster_4x_32x32 digest_fnv {cluster_fnv:#018x}\n\
         ingest_open_loop_4x arrivals {arrivals}\n\
         ingest_open_loop_4x accepted {accepted}\n\
         ingest_open_loop_4x completed {ingest_completed}\n\
         ingest_open_loop_4x digest_fnv {ingest_fnv:#018x}\n\
         compile_corpus_12 graphs {compile_graphs}\n\
         compile_corpus_12 completed {compile_completed}\n\
         compile_corpus_12 digest_fnv {compile_fnv:#018x}\n\
         soa_sweep_1024ap lanes {lanes}\n\
         soa_sweep_1024ap digest_perap {digest_perap:#018x}\n\
         soa_sweep_1024ap digest_soa {digest_soa:#018x}\n\
         chaos_mix_128x128 event_log_fnv {chaos128_fnv:#018x}\n\
         staged_pipeline datasets {pipe_datasets}\n\
         staged_pipeline digest_seq {digest_seq:#018x}\n\
         staged_pipeline digest_pipe {digest_pipe:#018x}\n",
        arrivals = ingest.arrivals,
        accepted = ingest.accepted,
        ingest_completed = ingest.completed,
        ingest_fnv = ingest.digest_fnv,
        lanes = sweep.lanes,
        digest_perap = sweep.digest_perap,
        digest_soa = sweep.digest_soa,
        pipe_datasets = pipe.graphs * pipe.datasets,
        digest_seq = pipe.digest_seq,
        digest_pipe = pipe.digest_pipe,
    );
    print!("{text}");
    std::fs::write(file, &text).unwrap_or_else(|e| panic!("writing {file}: {e}"));
    println!("wrote {file} ({threads} thread(s))");
}

fn check(dir: &str, baseline_dir: &str, threshold: f64, fatal: bool) {
    let mut failed = false;
    for file in FILES {
        let path = format!("{dir}/{file}");
        match std::fs::read_to_string(&path) {
            Ok(text) => match validate_json(&text) {
                Ok(()) => {
                    println!("ok: {path}");
                    let regressions =
                        diff_against_baseline(&text, &format!("{baseline_dir}/{file}"), threshold);
                    if fatal && regressions > 0 {
                        eprintln!(
                            "FAIL {path}: {regressions} median(s) regressed beyond \
                             {:.0}% (--check-fatal)",
                            threshold * 100.0
                        );
                        failed = true;
                    }
                }
                Err(e) => {
                    eprintln!("INVALID {path}: {e}");
                    failed = true;
                }
            },
            Err(e) => {
                eprintln!("MISSING {path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// Compares a freshly written BENCH document against the committed copy
/// at `baseline_path` and warns on medians more than `threshold` slower
/// (`--check-threshold`, default 25%). Returns the number of medians
/// that regressed beyond the threshold; without `--check-fatal` the
/// warnings are non-fatal by design — medians on shared CI hardware are
/// noisy, so this surfaces a trajectory signal without flaking the
/// build. Skips silently (returning 0) when the baseline is missing or
/// was taken under a different seed (the numbers would not be
/// comparable). A missing baseline file — or a sample name absent from
/// the baseline — is a **new workload**, reported as such and never a
/// regression: the first committed run establishes the baseline.
fn diff_against_baseline(fresh: &str, baseline_path: &str, threshold: f64) -> usize {
    let Ok(baseline) = std::fs::read_to_string(baseline_path) else {
        println!(
            "  new workload: no committed baseline at {baseline_path} yet \
             — this run's numbers establish it"
        );
        return 0;
    };
    if parse_seed(&baseline) != parse_seed(fresh) {
        return 0;
    }
    let old: std::collections::BTreeMap<String, u64> =
        parse_medians(&baseline).into_iter().collect();
    let mut regressions = 0;
    for (name, new_ns) in parse_medians(fresh) {
        let Some(&old_ns) = old.get(&name) else {
            println!("  new workload {name}: no baseline median, tracked from this run");
            continue;
        };
        if old_ns == 0 {
            continue;
        }
        let ratio = new_ns as f64 / old_ns as f64;
        if ratio > 1.0 + threshold {
            println!(
                "  WARN {name}: median {new_ns} ns/iter is {:.0}% slower than \
                 the committed {old_ns} ns/iter ({baseline_path})",
                (ratio - 1.0) * 100.0
            );
            regressions += 1;
        }
    }
    regressions
}

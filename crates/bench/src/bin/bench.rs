//! `bench` — the BENCH-emitting runner.
//!
//! Executes the sched / faults / hotpath workload families and writes
//! `BENCH_sched.json`, `BENCH_faults.json`, and `BENCH_hotpath.json`
//! (median ns/iter, ops/s, seed, git rev) so the perf trajectory is
//! machine-readable at the repo root.
//!
//! ```text
//! bench [--smoke] [--out DIR]   run workloads, write + validate JSONs
//! bench --check DIR             validate existing BENCH_*.json in DIR
//! ```
//!
//! `--smoke` runs a single iteration of each workload — CI uses it to
//! prove the pipeline still runs and emits well-formed documents.

use vlsi_bench::harness::{git_rev, measure, render_json, validate_json, BenchSample};
use vlsi_bench::hotpath::{
    chaos_mix, faults_noc, faults_sched, gather_release_churn, sched_acceptance, sched_mix, SEED,
};

const FILES: [&str; 3] = [
    "BENCH_sched.json",
    "BENCH_faults.json",
    "BENCH_hotpath.json",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out_dir = String::from(".");
    let mut check_dir: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                i += 1;
                out_dir = args.get(i).expect("--out needs a directory").clone();
            }
            "--check" => {
                i += 1;
                check_dir = Some(args.get(i).expect("--check needs a directory").clone());
            }
            other => {
                eprintln!("unknown argument {other}");
                eprintln!("usage: bench [--smoke] [--out DIR] | bench --check DIR");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if let Some(dir) = check_dir {
        check(&dir);
        return;
    }

    let iters = if smoke { 1 } else { 5 };
    let rev = git_rev();
    println!(
        "bench: seed {SEED}, rev {rev}, {iters} iteration(s){}",
        if smoke { " [smoke]" } else { "" }
    );

    emit(&out_dir, "sched", SEED, &rev, sched_samples(iters));
    emit(&out_dir, "faults", SEED, &rev, faults_samples(iters));
    emit(&out_dir, "hotpath", SEED, &rev, hotpath_samples(iters));
}

fn sched_samples(iters: u64) -> Vec<BenchSample> {
    let mut samples = Vec::new();
    for name in ["fifo", "priority", "backfill"] {
        let (mut s, makespan) =
            measure(&format!("mix48_{name}"), iters, || sched_mix(name).makespan);
        s.extra.push(("makespan", makespan));
        samples.push(s);
    }
    for name in ["fifo", "priority", "backfill"] {
        let mut fnv = 0u64;
        let (mut s, makespan) = measure(&format!("accept55_{name}"), iters, || {
            let (summary, checksum) = sched_acceptance(name);
            fnv = checksum;
            summary.makespan
        });
        s.extra.push(("makespan", makespan));
        s.extra.push(("event_log_fnv", fnv));
        samples.push(s);
    }
    samples
}

fn faults_samples(iters: u64) -> Vec<BenchSample> {
    let mut samples = Vec::new();
    for (tag, rate) in [("0pct", 0.0), ("1pct", 0.01), ("5pct", 0.05)] {
        let mut retrans = 0u64;
        let (mut s, delivered) = measure(&format!("noc_fault_{tag}"), iters, || {
            let (delivered, r) = faults_noc(rate);
            retrans = r;
            delivered as u64
        });
        s.extra.push(("delivered", delivered));
        s.extra.push(("retransmissions", retrans));
        samples.push(s);
    }
    for (tag, rate) in [("0pct", 0.0), ("5pct", 0.05)] {
        let (mut s, makespan) = measure(&format!("sched_fault_{tag}"), iters, || {
            faults_sched(rate).makespan
        });
        s.extra.push(("makespan", makespan));
        samples.push(s);
    }
    samples
}

fn hotpath_samples(iters: u64) -> Vec<BenchSample> {
    let mut samples = Vec::new();
    let (mut s, checksum) = measure("gather_release_churn_32x32", iters, || {
        gather_release_churn(120)
    });
    s.extra.push(("probe_checksum", checksum));
    samples.push(s);
    let mut fnv = 0u64;
    let (mut s, makespan) = measure("chaos_mix_64x64", iters, || {
        let (summary, checksum) = chaos_mix();
        fnv = checksum;
        summary.makespan
    });
    s.extra.push(("makespan", makespan));
    s.extra.push(("event_log_fnv", fnv));
    samples.push(s);
    samples
}

fn emit(dir: &str, bench: &str, seed: u64, rev: &str, samples: Vec<BenchSample>) {
    for s in &samples {
        println!(
            "  {:<28} median {:>12} ns/iter  {:>10.3} ops/s",
            s.name, s.median_ns, s.ops_per_s
        );
    }
    let doc = render_json(bench, seed, rev, &samples);
    validate_json(&doc).unwrap_or_else(|e| panic!("BENCH_{bench}.json failed validation: {e}"));
    std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("creating {dir}: {e}"));
    let path = format!("{dir}/BENCH_{bench}.json");
    std::fs::write(&path, &doc).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("  wrote {path}");
}

fn check(dir: &str) {
    let mut failed = false;
    for file in FILES {
        let path = format!("{dir}/{file}");
        match std::fs::read_to_string(&path) {
            Ok(text) => match validate_json(&text) {
                Ok(()) => println!("ok: {path}"),
                Err(e) => {
                    eprintln!("INVALID {path}: {e}");
                    failed = true;
                }
            },
            Err(e) => {
                eprintln!("MISSING {path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

//! Runs the whole evaluation and prints the paper-vs-measured summary —
//! the data behind EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p vlsi-bench --bin experiments --release
//! ```

use vlsi_bench::{figure3_sweep, figure3_text};
use vlsi_cost::scaling::{table4, ApComposition};

fn main() {
    println!("==============================================================");
    println!(" VLSI Processor — full evaluation reproduction");
    println!("==============================================================\n");

    println!("{}", vlsi_cost::table::table1());
    println!("{}", vlsi_cost::table::table2());
    println!("{}", vlsi_cost::table::table3());
    println!(
        "{}",
        vlsi_cost::table::table4_text(&ApComposition::default())
    );

    const PAPER4: [(u32, u64, f64, f64); 6] = [
        (2010, 12, 1.08, 178.0),
        (2011, 16, 1.21, 211.0),
        (2012, 21, 1.21, 276.0),
        (2013, 24, 1.43, 269.0),
        (2014, 34, 1.58, 345.0),
        (2015, 41, 1.56, 432.0),
    ];
    let mut exact_aps = true;
    let mut max_gops_err: f64 = 0.0;
    for (row, (_, aps, _, gops)) in table4(&ApComposition::default()).iter().zip(PAPER4) {
        exact_aps &= row.available_aps == aps;
        max_gops_err = max_gops_err.max(((row.peak_gops - gops) / gops).abs());
    }
    println!(
        "Table 4 verdict: AP column exact = {exact_aps}, max GOPS deviation = {:.1}%\n",
        max_gops_err * 100.0
    );

    let sizes = [16usize, 32, 64, 128, 256];
    let localities: Vec<f64> = (0..=10).map(|i| 1.0 - f64::from(i) / 10.0).collect();
    let rows = figure3_sweep(&sizes, &localities, 30, 0xF1_63);
    print!("{}", figure3_text(&sizes, &rows));
    let random = &rows.last().unwrap().1;
    println!(
        "\nFigure 3 verdict: channels monotone in randomness = {}, N never exhausted = {}, random ≈ N/2 = {}",
        rows.windows(2).all(|w| (0..sizes.len()).all(|i| {
            w[0].1[i].used_channels <= w[1].1[i].used_channels + 2
        })),
        random.iter().zip(&sizes).all(|(u, &n)| u.used_channels < n),
        random
            .iter()
            .zip(&sizes)
            .all(|(u, &n)| u.used_channels <= n / 2 + n / 8),
    );
}

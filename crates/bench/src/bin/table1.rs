//! Regenerates Table 1 (physical object area requirement).
fn main() {
    print!("{}", vlsi_cost::table::table1());
}

//! Regenerates Table 4 (number of APs, wire delay, peak GOPS) and prints
//! the paper's printed values alongside for comparison.

use vlsi_cost::scaling::{table4, ApComposition};

/// Table 4 as printed in the paper.
const PAPER: [(u32, u32, f64, f64); 6] = [
    (2010, 12, 1.08, 178.0),
    (2011, 16, 1.21, 211.0),
    (2012, 21, 1.21, 276.0),
    (2013, 24, 1.43, 269.0),
    (2014, 34, 1.58, 345.0),
    (2015, 41, 1.56, 432.0),
];

fn main() {
    let comp = ApComposition::default();
    println!("{}", vlsi_cost::table::table4_text(&comp));
    println!("paper-vs-measured:");
    println!(
        "{:>5} {:>9} {:>9} {:>11} {:>11} {:>11} {:>11}",
        "Year", "APs(pap)", "APs(got)", "delay(pap)", "delay(got)", "GOPS(pap)", "GOPS(got)"
    );
    for (row, (year, aps, delay, gops)) in table4(&comp).iter().zip(PAPER) {
        assert_eq!(row.year, year);
        println!(
            "{:>5} {:>9} {:>9} {:>11.2} {:>11.2} {:>11.1} {:>11.1}",
            year, aps, row.available_aps, delay, row.wire_delay_ns, gops, row.peak_gops
        );
    }
    println!(
        "\nAP-count column reproduces exactly; delays match to the paper's 2\n\
         decimals; GOPS lands within 3% (the paper's 2012/2015 GOPS entries\n\
         are internally inconsistent with its printed delays — see\n\
         EXPERIMENTS.md)."
    );

    // The §4.1 trade-off remark, quantified.
    println!("\nFPU/memory trade-off at the 2012 node:");
    for comp in [
        ApComposition {
            compute_objects: 8,
            memory_objects: 24,
        },
        ApComposition::default(),
        ApComposition {
            compute_objects: 24,
            memory_objects: 8,
        },
        ApComposition {
            compute_objects: 32,
            memory_objects: 4,
        },
    ] {
        let p = vlsi_cost::itrs::year(2012).unwrap();
        println!(
            "  {:>2} PO + {:>2} MO per AP: {:>2} APs, {:>6.1} GOPS",
            comp.compute_objects,
            comp.memory_objects,
            comp.aps_per_die(&p),
            comp.peak_gops(&p)
        );
    }
}

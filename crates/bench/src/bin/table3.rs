//! Regenerates Table 3 (control objects area requirement).
fn main() {
    print!("{}", vlsi_cost::table::table3());
}

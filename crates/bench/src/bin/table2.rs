//! Regenerates Table 2 (memory block area requirement).
fn main() {
    print!("{}", vlsi_cost::table::table2());
}

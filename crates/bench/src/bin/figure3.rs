//! Regenerates Figure 3: locality versus number of used channels, for
//! `N_object` ∈ {16, 32, 64, 128, 256} under the one-source model.
//!
//! ```text
//! cargo run -p vlsi-bench --bin figure3 --release
//! ```

use vlsi_bench::{figure3_sweep, figure3_text};

fn main() {
    let sizes = [16usize, 32, 64, 128, 256];
    // Locality axis, high → low (the paper plots high locality leftmost).
    let localities: Vec<f64> = (0..=10).map(|i| 1.0 - f64::from(i) / 10.0).collect();
    let rows = figure3_sweep(&sizes, &localities, 50, 0xF1_63);
    print!("{}", figure3_text(&sizes, &rows));

    // The paper's two headline observations, checked on the data.
    let random_row = &rows.last().unwrap().1;
    println!("\nchecks:");
    for (i, &n) in sizes.iter().enumerate() {
        let used = random_row[i].used_channels;
        println!(
            "  N={n:>3}: random datapath uses {used:>3} channels \
             (N never reached: {}, <= ~N/2: {})",
            used < n,
            used <= n / 2 + n / 8
        );
        assert!(used < n, "N_object channels must never all be used");
    }
    println!(
        "  high-locality (leftmost) points use {}..{} channels across sizes",
        rows[0].1.iter().map(|u| u.used_channels).min().unwrap(),
        rows[0].1.iter().map(|u| u.used_channels).max().unwrap(),
    );
}

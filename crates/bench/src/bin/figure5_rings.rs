//! Regenerates Figure 5 functionally: gathers the figure's family of
//! rectangular rings on one S-topology chip and verifies each closes.
//!
//! ```text
//! cargo run -p vlsi-bench --bin figure5_rings
//! ```

use vlsi_core::VlsiChip;
use vlsi_topology::{Cluster, Coord, Region};

fn main() {
    // Figure 5 sketches several ring processors coexisting on an 8x8
    // cluster array.
    let mut chip = VlsiChip::new(8, 8, Cluster::default());
    let rings = [
        ("2x2", Region::rect(Coord::new(0, 0), 2, 2)),
        ("4x2", Region::rect(Coord::new(3, 0), 4, 2)),
        ("2x4", Region::rect(Coord::new(0, 3), 2, 4)),
        ("4x4", Region::rect(Coord::new(3, 3), 4, 4)),
    ];
    println!("Figure 5: rings on the S-topology (8x8 cluster chip)");
    println!(
        "{:>6} {:>9} {:>7} {:>12} {:>13}",
        "shape", "clusters", "worms", "cfg-latency", "switch-stores"
    );
    for (name, region) in rings {
        let out = chip.gather_ring(region).expect("ring gathers");
        let p = chip.processor(out.id).unwrap();
        assert!(p.fold.closes_as_ring());
        // The programmed switches really cycle.
        let traced = chip.fabric().trace_shift_path(p.fold.path()[0], 1000);
        assert_eq!(traced.len(), p.scale());
        println!(
            "{:>6} {:>9} {:>7} {:>12} {:>13}",
            name,
            p.scale(),
            out.worms,
            out.config_latency,
            out.switch_stores
        );
    }
    println!(
        "\nall rings close; {} clusters remain free on the chip",
        chip.free_clusters()
    );
}

//! Hot-path workloads shared by the `bench` runner and Ablation IV.
//!
//! The workload families, one per `BENCH_*.json` file:
//!
//! * **sched** — the Ablation I 48-job policy mix plus the acceptance
//!   suite's 55-job mix (54 mixed jobs, five mid-run defects, one
//!   deadline-doomed straggler) with a live telemetry registry. The
//!   55-job runs also report an FNV-1a checksum of the full event log,
//!   which pins bit-identical scheduling across occupancy-index changes.
//! * **faults** — the Ablation II degraded-mode batches: a 240-worm
//!   staggered storm under transient link faults (spanning the whole
//!   fault horizon, so the 1% tier actually retransmits) and the 32-job
//!   mix under permanent switch faults.
//! * **hotpath** — gather/release churn on a 32×32 die with admission
//!   probes every round, and a 64×64 chaos mix (larger die, stuck
//!   switches mid-run) that leans on the occupancy scans the scheduler
//!   performs every tick.
//! * **cluster** — a ring of four 32×32 dies joined by the vlsi-fabric
//!   interconnect: chip 0 is oversubscribed so jobs migrate over real
//!   links, and one chip dies mid-run. The digest the thread-matrix
//!   gate compares covers the merged event logs and telemetry.
//! * **compile** — the 12-graph netgen corpus through every
//!   vlsi-compile pass, then executed as staged jobs against the
//!   netlist evaluator's reference outputs on both a two-chip fleet
//!   and a two-chip ring cluster; the digest covers the full artifact
//!   trail plus both sinks' event logs.
//! * **ingest** — the same 4-chip ring behind the vlsi-ingest front
//!   door, fed an open-loop overload trace through the submission ring
//!   while a chip dies mid-run: admission sheds typed, the client backs
//!   off, and the exact conservation ledger plus sojourn quantiles land
//!   in `BENCH_ingest.json`.
//! * **soa** — the AP hot-loop sweep: 1024 two-by-two-cluster APs
//!   filling a 64×64 die, each streaming a load→mul→store kernel,
//!   executed once through the per-AP loop and once through the
//!   struct-of-arrays region sweep ([`soa_sweep`]); the two execution
//!   digests must be identical (the ci.sh equivalence step compares
//!   them) and the execution-only timings land in `BENCH_soa.json`,
//!   alongside the 128×128 chaos mix that exercises the packed switch
//!   slab at scale.
//! * **pipeline** — the Fig. 7(d) cross-dataset overlap: every compiled
//!   netgen graph deployed on its placed regions and fed 32 datasets,
//!   once as 32 sequential `run` calls and once as one
//!   [`run_pipelined`](vlsi_core::StagedExecutor::run_pipelined)
//!   wavefront ([`staged_pipeline`]); the output digests must be
//!   identical (the ci.sh equivalence step compares them) and the
//!   execution-only throughputs land in `BENCH_pipeline.json`.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::Instant;

use crate::harness::fnv1a;
use vlsi_ap::ExecutionReport;
use vlsi_core::{ProcessorId, StagedExecutor, VlsiChip};
use vlsi_fabric::{Cluster as ChipCluster, ClusterConfig, ClusterTopology};
use vlsi_faults::{Fault, FaultKind, FaultPlan, FaultPlanBuilder};
use vlsi_ingest::{
    accounting, run_trace, AdmissionConfig, ClientConfig, IngestClient, IngestConfig, IngestService,
};
use vlsi_noc::NocNetwork;
use vlsi_object::{
    GlobalConfigElement, GlobalConfigStream, LocalConfig, LogicalObject, ObjectId, Operation, Word,
};
use vlsi_par::Pool;
use vlsi_prng::Prng;
use vlsi_runtime::mix::mixed_jobs;
use vlsi_runtime::{
    Fifo, Fleet, JobSpec, Priority, Runtime, RuntimeConfig, RuntimeSummary, SchedPolicy,
    SmallestFitBackfill, Workload,
};
use vlsi_telemetry::TelemetryHandle;
use vlsi_topology::{Cluster, Coord};
use vlsi_workloads::{arrival_trace, ArrivalProfile};

/// The workload seed every bench run replays (the paper's year).
pub const SEED: u64 = 2012;

/// Jobs in the Ablation I policy mix.
pub const MIX_JOBS: usize = 48;

/// Mixed jobs in the acceptance run (plus one doomed straggler = 55).
pub const ACCEPT_JOBS: usize = 54;

fn policy(name: &str) -> Box<dyn SchedPolicy> {
    match name {
        "fifo" => Box::new(Fifo),
        "priority" => Box::new(Priority),
        "backfill" => Box::new(SmallestFitBackfill),
        other => panic!("unknown policy {other}"),
    }
}

/// FNV-1a over the runtime's full debug-formatted event log.
pub fn event_log_fnv(rt: &Runtime) -> u64 {
    let mut text = String::new();
    for e in rt.events() {
        let _ = writeln!(text, "{e:?}");
    }
    fnv1a(text.as_bytes())
}

/// The Ablation I mix: 48 jobs, 8×8 die, no faults.
pub fn sched_mix(policy_name: &str) -> RuntimeSummary {
    let chip = VlsiChip::new(8, 8, Cluster::default());
    let mut rt = Runtime::new(chip, policy(policy_name), RuntimeConfig::default());
    for spec in mixed_jobs(SEED, MIX_JOBS) {
        rt.submit(spec);
    }
    rt.run_until_idle(500_000).expect("mix must drain")
}

/// The acceptance suite's 55-job mix: 54 mixed jobs plus a doomed
/// 16-cluster straggler, five mid-run defects, live telemetry — the
/// workload the tier-1 scheduler tests pin. Returns the summary and the
/// event-log checksum.
pub fn sched_acceptance(policy_name: &str) -> (RuntimeSummary, u64) {
    let chip = VlsiChip::with_telemetry(8, 8, Cluster::default(), TelemetryHandle::active());
    let mut rt = Runtime::new(chip, policy(policy_name), RuntimeConfig::default());
    rt.inject_defect_at(4, Coord::new(1, 1));
    rt.inject_defect_at(8, Coord::new(5, 4));
    rt.inject_defect_at(12, Coord::new(3, 6));
    rt.inject_defect_at(18, Coord::new(6, 2));
    rt.inject_defect_at(26, Coord::new(2, 5));
    for spec in mixed_jobs(SEED, ACCEPT_JOBS) {
        rt.submit(spec);
    }
    rt.submit(JobSpec::new("doomed", 16, Workload::Idle { ticks: 10 }).with_deadline(1));
    let summary = rt.run_until_idle(500_000).expect("the mix must drain");
    let fnv = event_log_fnv(&rt);
    (summary, fnv)
}

/// Worms in the Ablation II NoC storm.
pub const FAULT_STORM_WORMS: usize = 240;

/// The Ablation II NoC batch: a 240-worm storm on an 8×8 mesh under
/// transient link faults at `rate`, injected in batches of 10 every 8
/// cycles so traffic spans the whole 192-cycle fault horizon. (The old
/// single-burst storm drained before the drawn fault windows *opened*,
/// so the 1% tier reported zero retransmissions and exercised nothing.)
/// Returns `(delivered, retransmissions)`.
pub fn faults_noc(rate: f64) -> (usize, u64) {
    let (w, h) = (8u16, 8u16);
    let mut net = NocNetwork::with_telemetry(w, h, TelemetryHandle::active());
    let plan = FaultPlanBuilder::new(SEED)
        .grid(w, h)
        .horizon(192)
        .link_down_rate(rate)
        .link_corrupt_rate(rate)
        .permanent_fraction(0.0)
        .build();
    net.attach_fault_plan(plan);
    let mut rng = Prng::seed_from_u64(SEED);
    let mut injected = 0;
    while injected < FAULT_STORM_WORMS {
        for _ in 0..10.min(FAULT_STORM_WORMS - injected) {
            let src = Coord::new(rng.gen_range(0..w), rng.gen_range(0..h));
            let dest = Coord::new(rng.gen_range(0..w), rng.gen_range(0..h));
            let payload: Vec<u64> = (0..rng.gen_range(8..16u64)).collect();
            net.inject(src, dest, payload).unwrap();
            injected += 1;
        }
        for _ in 0..8 {
            net.tick();
        }
    }
    net.run_until_drained(4_000_000).expect("must drain");
    let delivered = net.take_delivered().len();
    let retrans = net.telemetry().snapshot().counter("noc.retransmissions");
    (delivered, retrans)
}

/// The Ablation II scheduler batch: the 32-job mix under permanent
/// switch faults at `rate`.
pub fn faults_sched(rate: f64) -> RuntimeSummary {
    let chip = VlsiChip::new(8, 8, Cluster::default());
    let mut rt = Runtime::new(chip, Box::new(Fifo), RuntimeConfig::default());
    let plan = FaultPlanBuilder::new(SEED)
        .grid(8, 8)
        .horizon(100)
        .switch_stuck_rate(rate)
        .build();
    rt.attach_fault_plan(plan);
    for spec in mixed_jobs(SEED, 32) {
        rt.submit(spec);
    }
    rt.run_until_idle(500_000).expect("mix must drain")
}

/// Gather/release churn on a 32×32 die: every round gathers a
/// Fibonacci-sized region, retires the oldest tenant past a cap, and
/// runs the two admission probes (`largest_gatherable`, `free_clusters`)
/// the scheduler leans on. Returns a checksum over every probe answer,
/// so the optimised index must reproduce the slow scans bit for bit.
pub fn gather_release_churn(rounds: usize) -> u64 {
    let mut chip = VlsiChip::new(32, 32, Cluster::default());
    let sizes = [3usize, 5, 8, 13, 21, 34];
    let mut live: VecDeque<ProcessorId> = VecDeque::new();
    let mut acc = 0u64;
    for round in 0..rounds {
        let k = sizes[round % sizes.len()];
        if let Ok(out) = chip.gather_any(k) {
            live.push_back(out.id);
        }
        if live.len() > 24 {
            let id = live.pop_front().unwrap();
            chip.release_processor(id).expect("churn release");
        }
        acc = acc
            .wrapping_mul(1_000_003)
            .wrapping_add(chip.largest_gatherable() as u64);
        acc = acc
            .wrapping_mul(1_000_003)
            .wrapping_add(chip.free_clusters() as u64);
    }
    for id in live {
        chip.release_processor(id).expect("drain release");
    }
    acc.wrapping_add(chip.free_clusters() as u64)
}

/// The 64×64 chaos mix: a large die where every per-tick occupancy scan
/// hurts, 40 mixed jobs, and ~8 switches sticking mid-run. Returns the
/// summary and the event-log checksum.
pub fn chaos_mix() -> (RuntimeSummary, u64) {
    chaos_mix_sized(64, 40)
}

/// [`chaos_mix`] at an arbitrary square die size — the 128×128 variant
/// in `BENCH_soa.json` exercises the packed switch slab and the
/// occupancy index at the scale the memory diet exists for.
pub fn chaos_mix_sized(dim: u16, jobs: usize) -> (RuntimeSummary, u64) {
    let chip = VlsiChip::new(dim, dim, Cluster::default());
    let mut rt = Runtime::new(chip, Box::new(Fifo), RuntimeConfig::default());
    let plan = FaultPlanBuilder::new(SEED)
        .grid(dim, dim)
        .horizon(120)
        .switch_stuck_rate(0.002)
        .build();
    rt.attach_fault_plan(plan);
    for spec in mixed_jobs(SEED, jobs) {
        rt.submit(spec);
    }
    let summary = rt.run_until_idle(500_000).expect("chaos mix must drain");
    let fnv = event_log_fnv(&rt);
    (summary, fnv)
}

/// The fleet mix: `chips` independent 64×64 dies, each running its own
/// 40-job mix (seeded `SEED + chip`), ticked on `threads` workers with a
/// static chip→worker assignment. Returns `(completed, merged-event-log
/// fnv, merged-telemetry fnv)` — both checksums are over fleet-wide
/// merges in chip-index order, so they must be bit-identical at every
/// thread count.
pub fn fleet_mix(threads: usize, chips: usize) -> (u64, u64, u64) {
    let mut fleet = Fleet::new(Pool::new(threads));
    for c in 0..chips {
        let chip = VlsiChip::with_telemetry(64, 64, Cluster::default(), TelemetryHandle::active());
        let mut rt = Runtime::new(chip, Box::new(Fifo), RuntimeConfig::default());
        for spec in mixed_jobs(SEED + c as u64, 40) {
            rt.submit(spec);
        }
        fleet.push(rt);
    }
    let summaries = fleet.run_until_idle(500_000).expect("fleet must drain");
    let completed = summaries.iter().map(|s| s.completed).sum();
    let mut text = String::new();
    for (c, e) in fleet.merged_events() {
        let _ = writeln!(text, "{c} {e:?}");
    }
    let events_fnv = fnv1a(text.as_bytes());
    let telemetry_fnv = fnv1a(fleet.merged_telemetry().snapshot().to_json().as_bytes());
    (completed, events_fnv, telemetry_fnv)
}

/// The cluster mix: a ring of four 32×32 dies with the fabric between
/// them. Chip 0 is hammered with twelve 400-cluster jobs (at most two
/// co-run, so the rest must migrate over the fabric), chips 1–3 carry a
/// light mixed background, and chip 3 dies at tick 10 — its jobs
/// relocate across the ring. Returns `(completed, fabric messages,
/// digest fnv)`; the digest covers the cluster summary, the merged
/// event logs, and the merged telemetry export, so it must be
/// bit-identical at every thread count.
pub fn cluster_4x(threads: usize) -> (u64, u64, u64) {
    let mut cluster = ChipCluster::with_telemetry(
        ClusterTopology::ring(4),
        (32, 32),
        Pool::new(threads),
        ClusterConfig::standard(),
        TelemetryHandle::active(),
    );
    for _ in 0..4 {
        let chip = VlsiChip::with_telemetry(32, 32, Cluster::default(), TelemetryHandle::active());
        cluster.push_chip(Runtime::new(chip, Box::new(Fifo), RuntimeConfig::default()));
    }
    for j in 0..12 {
        cluster.submit_to(
            0,
            JobSpec::new(format!("bulk{j}"), 400, Workload::Idle { ticks: 20 }),
        );
    }
    for c in 1..4usize {
        for spec in mixed_jobs(SEED + c as u64, 6) {
            cluster.submit_to(c, spec);
        }
    }
    let mut plan = FaultPlan::none();
    plan.push(Fault::permanent(FaultKind::ChipDown { chip: 3 }, 10));
    cluster.attach_fault_plan(plan);
    let summary = cluster.run_until_idle(500_000).expect("cluster must drain");
    let mut text = String::new();
    let _ = writeln!(
        text,
        "ticks {} completed {} failed {} lost {} migrated {} deaths {}",
        summary.ticks,
        summary.completed,
        summary.failed,
        summary.lost,
        summary.migrated,
        summary.chip_failures
    );
    for (c, e) in cluster.merged_events() {
        let _ = writeln!(text, "{c} {e:?}");
    }
    let _ = writeln!(text, "{}", cluster.merged_telemetry().snapshot().to_json());
    (
        summary.completed,
        cluster.network().stats().messages,
        fnv1a(text.as_bytes()),
    )
}

/// What [`ingest_open_loop`] reports: the conservation ledger headline
/// numbers, the sojourn quantiles, and the determinism digest the
/// thread-matrix gate compares.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IngestOpenLoopReport {
    /// Client-side arrivals delivered by the trace.
    pub arrivals: u64,
    /// Requests admitted into the cluster.
    pub accepted: u64,
    /// Requests shed or rejected, all reasons.
    pub dropped: u64,
    /// Jobs the cluster completed.
    pub completed: u64,
    /// p50 enqueue→admission sojourn (log2-quantised ticks).
    pub sojourn_p50: u64,
    /// p99 enqueue→admission sojourn (log2-quantised ticks).
    pub sojourn_p99: u64,
    /// FNV digest over the ledger, merged events, and telemetry.
    pub digest_fnv: u64,
}

/// The ingest open-loop mix: a genuinely overloading arrival trace
/// (~15 jobs/tick for 120 ticks, six tenants, rate-limited) pushed
/// through a 16-slot submission ring into a ring of four small 8×8
/// dies, with chip 3 dying at tick 40 — the ring backpressures, the
/// client backs off, degraded mode sheds low classes, deadlines shed
/// up front, and the fabric migrates the dead chip's jobs, all while
/// the exact conservation ledger stays balanced. The digest covers the
/// ledger, the merged event logs, and the merged telemetry export, so
/// it must be bit-identical at every thread count.
pub fn ingest_open_loop(threads: usize) -> IngestOpenLoopReport {
    let mut cluster = ChipCluster::with_telemetry(
        ClusterTopology::ring(4),
        (8, 8),
        Pool::new(threads),
        ClusterConfig::standard(),
        TelemetryHandle::active(),
    );
    for _ in 0..4 {
        let chip = VlsiChip::with_telemetry(8, 8, Cluster::default(), TelemetryHandle::active());
        cluster.push_chip(Runtime::new(chip, Box::new(Fifo), RuntimeConfig::default()));
    }
    let mut plan = FaultPlan::none();
    plan.push(Fault::permanent(FaultKind::ChipDown { chip: 3 }, 40));
    cluster.attach_fault_plan(plan);

    let telemetry = TelemetryHandle::active();
    let mut service = IngestService::with_telemetry(
        cluster,
        IngestConfig {
            ring_capacity: 8,
            admission: AdmissionConfig {
                tenant_rate_milli: 2000,
                tenant_burst: 4,
                high_water: 64,
                low_water: 24,
                max_degraded_level: 4,
            },
        },
        telemetry.clone(),
    );
    let mut client = IngestClient::with_telemetry(
        service.ring(),
        SEED,
        ClientConfig::default(),
        telemetry.clone(),
    );
    let trace = arrival_trace(
        SEED,
        ArrivalProfile::Overload { rate_milli: 15_000 },
        120,
        6,
    );
    run_trace(&mut service, &mut client, &trace, 500_000).expect("open loop must drain");

    let ledger = accounting(&service, &client);
    assert!(ledger.is_balanced(), "conservation ledger: {ledger:?}");
    let snap = telemetry.snapshot();
    let (p50, p99) = snap
        .histogram("ingest.sojourn")
        .map(|h| (h.percentile(500), h.percentile(990)))
        .unwrap_or((0, 0));

    let mut text = String::new();
    let _ = writeln!(text, "{ledger:?}");
    for (c, e) in service.sink().merged_events() {
        let _ = writeln!(text, "{c} {e:?}");
    }
    let _ = writeln!(text, "{}", snap.to_json());
    let _ = writeln!(
        text,
        "{}",
        service.sink().merged_telemetry().snapshot().to_json()
    );
    IngestOpenLoopReport {
        arrivals: ledger.arrivals,
        accepted: ledger.stats.accepted,
        dropped: ledger.stats.decided() - ledger.stats.accepted + ledger.gave_up,
        completed: ledger.completed,
        sojourn_p50: p50,
        sojourn_p99: p99,
        digest_fnv: fnv1a(text.as_bytes()),
    }
}

/// The compile mix: the full 12-graph netgen corpus driven through
/// every vlsi-compile pass, then *executed* — each compiled
/// [`StagedProgram`](vlsi_core::StagedProgram) becomes a
/// `Workload::Staged` job with three deterministic datasets and the
/// netlist evaluator's reference outputs attached, submitted to both a
/// two-chip [`Fleet`] and a two-chip ring [`ChipCluster`] on a
/// `threads`-wide pool. The runtime fails any job whose on-chip
/// outputs diverge from the reference, so `completed` doubles as a
/// correctness count. Returns `(graphs, completed, digest_fnv)`; the
/// digest covers every pass's artifact dump plus both sinks' merged
/// event logs, so it must be bit-identical at every thread count — the
/// thread-matrix CI gate compares it.
pub fn compile_corpus(threads: usize) -> (u64, u64, u64) {
    use std::collections::HashMap;
    use vlsi_compile::{compile, CompileOptions};

    let opts = CompileOptions::default();
    let corpus = vlsi_workloads::netgen::corpus(SEED);
    let mut text = String::new();
    let mut jobs: Vec<JobSpec> = Vec::new();
    for (name, src) in &corpus {
        let c = compile(src, &opts).unwrap_or_else(|e| panic!("{name}: {e}"));
        let _ = writeln!(text, "graph {name}");
        text.push_str(&c.emit_all());
        let mut rng = Prng::seed_from_u64(SEED ^ fnv1a(name.as_bytes()));
        let mut datasets = Vec::new();
        let mut expected = Vec::new();
        for _ in 0..3 {
            let mut env: HashMap<String, i64> = HashMap::new();
            for input in c.netlist.input_names() {
                env.insert(input.to_string(), i64::from(rng.gen_range(-500..500i32)));
            }
            expected.push(c.netlist.evaluate(&env));
            datasets.push(env);
        }
        jobs.push(JobSpec::for_staged(
            format!("compile_{name}"),
            c.program.clone(),
            datasets,
            Some(expected),
        ));
    }
    let graphs = corpus.len() as u64;

    // Fleet sink: jobs alternate between two 16×16 chips.
    let mut fleet = Fleet::new(Pool::new(threads));
    for chip_ix in 0..2usize {
        let chip = VlsiChip::with_telemetry(16, 16, Cluster::default(), TelemetryHandle::active());
        let mut rt = Runtime::new(chip, Box::new(Fifo), RuntimeConfig::default());
        for (j, spec) in jobs.iter().enumerate() {
            if j % 2 == chip_ix {
                rt.submit(spec.clone());
            }
        }
        fleet.push(rt);
    }
    let summaries = fleet.run_until_idle(500_000).expect("fleet must drain");
    let mut completed: u64 = summaries.iter().map(|s| s.completed).sum();
    assert_eq!(
        summaries.iter().map(|s| s.failed).sum::<u64>(),
        0,
        "compiled programs must match the netlist evaluator on the fleet"
    );
    for (c, e) in fleet.merged_events() {
        let _ = writeln!(text, "fleet {c} {e:?}");
    }

    // Cluster sink: the same jobs over the fabric, two-chip ring.
    let mut cluster = ChipCluster::with_telemetry(
        ClusterTopology::ring(2),
        (16, 16),
        Pool::new(threads),
        ClusterConfig::standard(),
        TelemetryHandle::active(),
    );
    for _ in 0..2 {
        let chip = VlsiChip::with_telemetry(16, 16, Cluster::default(), TelemetryHandle::active());
        cluster.push_chip(Runtime::new(chip, Box::new(Fifo), RuntimeConfig::default()));
    }
    for (j, spec) in jobs.iter().enumerate() {
        cluster.submit_to(j % 2, spec.clone());
    }
    let summary = cluster.run_until_idle(500_000).expect("cluster must drain");
    assert_eq!(
        summary.failed, 0,
        "compiled programs must match the netlist evaluator on the cluster"
    );
    completed += summary.completed;
    for (c, e) in cluster.merged_events() {
        let _ = writeln!(text, "cluster {c} {e:?}");
    }

    (graphs, completed, fnv1a(text.as_bytes()))
}

/// A 256-worm storm on a 32×32 mesh ticked through the *sharded* NoC
/// path (`min_resident` 0, so row-stripe sharding engages at any
/// occupancy when `threads > 1`). Returns an FNV digest over the
/// delivered list, final stats, and the telemetry export — the digest
/// the thread-matrix CI gate compares across thread counts.
pub fn noc_storm(threads: usize) -> u64 {
    let (w, h) = (32u16, 32u16);
    let mut net = NocNetwork::with_telemetry(w, h, TelemetryHandle::active());
    net.set_parallel(Pool::new(threads), 0);
    let mut rng = Prng::seed_from_u64(SEED);
    for _ in 0..256 {
        let src = Coord::new(rng.gen_range(0..w), rng.gen_range(0..h));
        let dest = Coord::new(rng.gen_range(0..w), rng.gen_range(0..h));
        let payload: Vec<u64> = (0..rng.gen_range(4..12u64)).collect();
        net.inject(src, dest, payload).unwrap();
    }
    net.run_until_drained(4_000_000).expect("storm must drain");
    let mut text = String::new();
    for d in net.take_delivered() {
        let _ = writeln!(text, "{d:?}");
    }
    let _ = writeln!(text, "{:?}", net.stats());
    let _ = writeln!(text, "{}", net.telemetry().snapshot().to_json());
    fnv1a(text.as_bytes())
}

/// APs in the [`soa_sweep`] region (exactly fills a 64×64 die at 2×2
/// clusters each).
pub const SOA_SWEEP_LANES: usize = 1024;

/// Words each [`soa_sweep`] lane streams through its kernel.
const SOA_STREAM_LEN: u64 = 256;

/// What [`soa_sweep`] reports: execution-only wall time of each path
/// plus the digest over every report and every stored output word. The
/// two digests must be equal — the ci.sh equivalence step compares the
/// lines the bench `--digest` mode emits for them.
#[derive(Clone, Copy, Debug)]
pub struct SoaSweepReport {
    /// APs in the region.
    pub lanes: u64,
    /// Per-AP execute loop, execution-only nanoseconds.
    pub perap_ns: u64,
    /// SoA region sweep, execution-only nanoseconds.
    pub soa_ns: u64,
    /// FNV digest of the per-AP reports + memory outputs.
    pub digest_perap: u64,
    /// FNV digest of the SoA reports + memory outputs.
    pub digest_soa: u64,
}

/// Gathers `lanes` 2×2 APs on a `width × width` die, installs the
/// stream kernel (stream-load `SOA_STREAM_LEN` words from block 0 →
/// six-stage ALU chain → stream-store back to block 0 past the inputs)
/// in each, fills block 0 through the mailbox, and activates +
/// configures everything. The chain is deep enough that each lane's
/// datapath state is a real working set — the regime the SoA layout is
/// for — rather than a trivial three-node loop that fits in a cache
/// line either way.
fn soa_ready_chip(width: u16, lanes: usize, threads: usize) -> (VlsiChip, Vec<ProcessorId>) {
    let mut chip = VlsiChip::new(width, width, Cluster::default());
    if threads > 1 {
        chip.set_region_parallel(Pool::new(threads));
    }
    let mut ids = Vec::with_capacity(lanes);
    for k in 0..lanes {
        let id = chip.gather_any(4).expect("the die must fit every lane").id;
        chip.install(
            id,
            vec![
                LogicalObject::memory(ObjectId(0), LocalConfig::op(Operation::Load))
                    .with_init(vec![Word(0), Word(0), Word(SOA_STREAM_LEN)]),
                LogicalObject::compute(
                    ObjectId(1),
                    LocalConfig::with_imm(Operation::MulImm, Word(3 + (k as u64 % 5))),
                ),
                LogicalObject::compute(
                    ObjectId(2),
                    LocalConfig::with_imm(Operation::AddImm, Word(7)),
                ),
                LogicalObject::compute(ObjectId(3), LocalConfig::op(Operation::INot)),
                LogicalObject::compute(
                    ObjectId(4),
                    LocalConfig::with_imm(Operation::MulImm, Word(5)),
                ),
                LogicalObject::compute(
                    ObjectId(5),
                    LocalConfig::with_imm(Operation::AddImm, Word(k as u64 % 7)),
                ),
                LogicalObject::compute(ObjectId(6), LocalConfig::op(Operation::INot)),
                LogicalObject::memory(ObjectId(7), LocalConfig::op(Operation::Store))
                    .with_init(vec![Word(SOA_STREAM_LEN), Word(0), Word(0)]),
            ],
        )
        .expect("install stream kernel");
        let words: Vec<Word> = (0..SOA_STREAM_LEN)
            .map(|i| Word((k as u64).wrapping_mul(1_000_003).wrapping_add(i)))
            .collect();
        chip.write_mailbox(id, 0, 0, &words).expect("fill block 0");
        chip.activate(id).expect("activate");
        let stream: GlobalConfigStream = [
            GlobalConfigElement::unary(ObjectId(1), ObjectId(0)),
            GlobalConfigElement::unary(ObjectId(2), ObjectId(1)),
            GlobalConfigElement::unary(ObjectId(3), ObjectId(2)),
            GlobalConfigElement::unary(ObjectId(4), ObjectId(3)),
            GlobalConfigElement::unary(ObjectId(5), ObjectId(4)),
            GlobalConfigElement::unary(ObjectId(6), ObjectId(5)),
            GlobalConfigElement {
                sink: ObjectId(7),
                src_lhs: None,
                src_rhs: Some(ObjectId(6)),
                src_pred: None,
            },
        ]
        .into_iter()
        .collect();
        chip.configure(id, stream).expect("configure");
        ids.push(id);
    }
    (chip, ids)
}

/// FNV digest over every lane's report (taps and node firings sorted by
/// object id) and the stored output words read back through the
/// mailbox. Deactivates each processor to read its memory.
fn sweep_digest(chip: &mut VlsiChip, ids: &[ProcessorId], reports: &[ExecutionReport]) -> u64 {
    let mut text = String::new();
    for (i, (&id, r)) in ids.iter().zip(reports).enumerate() {
        let mut taps: Vec<(u32, &Vec<Word>)> = r.taps.iter().map(|(o, v)| (o.0, v)).collect();
        taps.sort_unstable_by_key(|(o, _)| *o);
        let mut firings: Vec<(u32, u64)> = r.node_firings.iter().map(|(o, &n)| (o.0, n)).collect();
        firings.sort_unstable_by_key(|(o, _)| *o);
        let _ = writeln!(
            text,
            "{i} cycles {} firings {} loads {} stores {} drained {} tokens {} \
             taps {taps:?} node_firings {firings:?} release {:?}",
            r.cycles, r.firings, r.loads, r.stores, r.drained, r.release_tokens, r.release_order,
        );
        chip.deactivate(id).expect("deactivate for readback");
        let out = chip
            .read_mailbox(id, 0, SOA_STREAM_LEN, SOA_STREAM_LEN as usize)
            .expect("read outputs");
        let _ = writeln!(text, "{i} out {out:?}");
    }
    fnv1a(text.as_bytes())
}

/// The SoA sweep workload: the same `lanes`-AP region executed twice
/// from identical setups — once through the per-AP `execute` loop,
/// once through `execute_batch`'s struct-of-arrays region sweep on a
/// `threads`-wide pool. Only the execution phase is timed (gathering
/// and configuring 1024 APs dwarfs the sweep itself); the digests pin
/// both paths to the same reports and the same memory image.
pub fn soa_sweep(threads: usize, lanes: usize, width: u16) -> SoaSweepReport {
    let (mut chip, ids) = soa_ready_chip(width, lanes, 1);
    let t = Instant::now();
    let reports: Vec<ExecutionReport> = ids
        .iter()
        .map(|&id| chip.execute(id, 1, 1_000_000).expect("per-AP execute"))
        .collect();
    let perap_ns = t.elapsed().as_nanos() as u64;
    let digest_perap = sweep_digest(&mut chip, &ids, &reports);

    let (mut chip, ids) = soa_ready_chip(width, lanes, threads);
    let t = Instant::now();
    let reports = chip
        .execute_batch(&ids, 1, 1_000_000)
        .expect("SoA region sweep");
    let soa_ns = t.elapsed().as_nanos() as u64;
    let digest_soa = sweep_digest(&mut chip, &ids, &reports);

    SoaSweepReport {
        lanes: lanes as u64,
        perap_ns,
        soa_ns,
        digest_perap,
        digest_soa,
    }
}

/// Datasets each graph pumps through [`staged_pipeline`].
pub const PIPELINE_DATASETS: usize = 32;

/// What [`staged_pipeline`] reports: execution-only wall time of the
/// sequential and pipelined walks over the same dataset batches, plus a
/// digest over every output vector from each path. The two digests must
/// be equal — the ci.sh equivalence step compares the lines the bench
/// `--digest` mode emits for them.
#[derive(Clone, Copy, Debug)]
pub struct StagedPipelineReport {
    /// Compiled graphs driven through both paths.
    pub graphs: u64,
    /// Datasets per graph.
    pub datasets: u64,
    /// N sequential `run` calls, execution-only nanoseconds.
    pub seq_ns: u64,
    /// One `run_pipelined` wavefront, execution-only nanoseconds.
    pub pipe_ns: u64,
    /// FNV digest of every sequential output vector.
    pub digest_seq: u64,
    /// FNV digest of every pipelined output vector.
    pub digest_pipe: u64,
    /// Sum of per-graph pipeline-occupancy (‰ of stage×tick slots busy).
    pub utilization_milli_sum: u64,
}

/// The staged-pipeline workload: the 12-graph netgen corpus compiled
/// through every vlsi-compile pass, each program deployed on its placed
/// regions, then fed `datasets` seeded input environments twice — once
/// as `datasets` sequential [`StagedExecutor::run`] calls (release
/// nothing, but configure every stage per dataset) and once as a single
/// [`StagedExecutor::run_pipelined`] wavefront (configure once, overlap
/// datasets across levels). Each path runs on a freshly deployed chip
/// and only the run loop is timed; every pipelined output is also
/// checked against the netlist evaluator, so the digest doubles as a
/// correctness pin. With `threads > 1` the per-tick wavefront sweeps on
/// a `threads`-wide pool — the digests must not move.
pub fn staged_pipeline(threads: usize, datasets: usize) -> StagedPipelineReport {
    use std::collections::HashMap;
    use vlsi_compile::{compile, CompileOptions};

    let opts = CompileOptions::default();
    let corpus = vlsi_workloads::netgen::corpus(SEED);
    let mut report = StagedPipelineReport {
        graphs: corpus.len() as u64,
        datasets: datasets as u64,
        seq_ns: 0,
        pipe_ns: 0,
        digest_seq: 0,
        digest_pipe: 0,
        utilization_milli_sum: 0,
    };
    let mut seq_text = String::new();
    let mut pipe_text = String::new();
    let deploy = |c: &vlsi_compile::Compilation, threads: usize| {
        let mut chip = VlsiChip::new(opts.chip_width, opts.chip_height, Cluster::default());
        if threads > 1 {
            chip.set_region_parallel(Pool::new(threads));
        }
        let exec =
            StagedExecutor::deploy_placed(&mut chip, c.program.clone(), &c.placement.regions)
                .expect("the default die must fit every corpus program");
        (chip, exec)
    };
    for (name, src) in &corpus {
        let c = compile(src, &opts).unwrap_or_else(|e| panic!("{name}: {e}"));
        let mut rng = Prng::seed_from_u64(SEED ^ fnv1a(name.as_bytes()));
        let batch: Vec<HashMap<String, i64>> = (0..datasets)
            .map(|_| {
                c.netlist
                    .input_names()
                    .iter()
                    .map(|v| (v.to_string(), i64::from(rng.gen_range(-500..500i32))))
                    .collect()
            })
            .collect();

        let (mut chip, exec) = deploy(&c, threads);
        let t = Instant::now();
        let seq_outs: Vec<Vec<i64>> = batch
            .iter()
            .map(|env| exec.run(&mut chip, env).expect("sequential run").0)
            .collect();
        report.seq_ns += t.elapsed().as_nanos() as u64;

        let (mut chip, exec) = deploy(&c, threads);
        let t = Instant::now();
        let (pipe_outs, stats) = exec
            .run_pipelined(&mut chip, &batch)
            .expect("pipelined run");
        report.pipe_ns += t.elapsed().as_nanos() as u64;
        report.utilization_milli_sum += stats.utilization_milli;

        for (i, (env, out)) in batch.iter().zip(&pipe_outs).enumerate() {
            assert_eq!(
                *out,
                c.netlist.evaluate(env),
                "{name} dataset {i}: pipelined outputs must match the evaluator"
            );
        }
        for (i, out) in seq_outs.iter().enumerate() {
            let _ = writeln!(seq_text, "{name} {i} {out:?}");
        }
        for (i, out) in pipe_outs.iter().enumerate() {
            let _ = writeln!(pipe_text, "{name} {i} {out:?}");
        }
    }
    report.digest_seq = fnv1a(seq_text.as_bytes());
    report.digest_pipe = fnv1a(pipe_text.as_bytes());
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_is_deterministic_and_restores_the_die() {
        assert_eq!(gather_release_churn(24), gather_release_churn(24));
    }

    #[test]
    fn acceptance_checksum_replays() {
        let (a_sum, a_fnv) = sched_acceptance("fifo");
        let (b_sum, b_fnv) = sched_acceptance("fifo");
        assert_eq!(a_fnv, b_fnv, "event log must replay bit-identically");
        assert_eq!(a_sum.makespan, b_sum.makespan);
        assert_eq!(a_sum.completed + a_sum.failed, (ACCEPT_JOBS + 1) as u64);
    }

    #[test]
    fn fault_storm_exercises_retransmission() {
        let (delivered, retrans) = faults_noc(0.0);
        assert_eq!(delivered, FAULT_STORM_WORMS);
        assert_eq!(retrans, 0, "no faults, no retransmissions");
        let (delivered, retrans) = faults_noc(0.01);
        assert_eq!(delivered, FAULT_STORM_WORMS);
        assert!(retrans >= 1, "the 1% tier must hit at least one window");
    }

    #[test]
    fn chaos_mix_replays() {
        let (a, a_fnv) = chaos_mix();
        let (b, b_fnv) = chaos_mix();
        assert_eq!(a_fnv, b_fnv);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.completed + a.failed, 40);
    }

    #[test]
    fn staged_pipeline_digests_match_and_replay() {
        // A small dataset count keeps the test quick; the full 32-set
        // batch runs in the bench binary and the ci.sh digest gate.
        let a = staged_pipeline(1, 4);
        assert_eq!(a.graphs, 12);
        assert_eq!(
            a.digest_seq, a.digest_pipe,
            "pipelined outputs must reproduce the sequential walk bit for bit"
        );
        for threads in [2usize, 8] {
            let b = staged_pipeline(threads, 4);
            assert_eq!(
                a.digest_pipe, b.digest_pipe,
                "identical at {threads} threads"
            );
            assert_eq!(b.digest_seq, b.digest_pipe);
        }
    }

    #[test]
    fn soa_sweep_matches_per_ap_and_replays() {
        // A small instance keeps the test quick; the full 1024-lane
        // region runs in the bench binary and the ci.sh digest gate.
        let a = soa_sweep(1, 16, 8);
        assert_eq!(a.lanes, 16);
        assert_eq!(
            a.digest_perap, a.digest_soa,
            "SoA sweep must reproduce the per-AP path bit for bit"
        );
        for threads in [2usize, 8] {
            let b = soa_sweep(threads, 16, 8);
            assert_eq!(a.digest_soa, b.digest_soa, "identical at {threads} threads");
            assert_eq!(b.digest_perap, b.digest_soa);
        }
    }
}

//! Hot-path workloads shared by the `bench` runner and Ablation IV.
//!
//! Three workload families, one per `BENCH_*.json` file:
//!
//! * **sched** — the Ablation I 48-job policy mix plus the acceptance
//!   suite's 55-job mix (54 mixed jobs, five mid-run defects, one
//!   deadline-doomed straggler) with a live telemetry registry. The
//!   55-job runs also report an FNV-1a checksum of the full event log,
//!   which pins bit-identical scheduling across occupancy-index changes.
//! * **faults** — the Ablation II degraded-mode batches: 60 worms under
//!   transient link faults and the 32-job mix under permanent switch
//!   faults.
//! * **hotpath** — gather/release churn on a 32×32 die with admission
//!   probes every round, and a 64×64 chaos mix (larger die, stuck
//!   switches mid-run) that leans on the occupancy scans the scheduler
//!   performs every tick.

use std::collections::VecDeque;
use std::fmt::Write as _;

use crate::harness::fnv1a;
use vlsi_core::{ProcessorId, VlsiChip};
use vlsi_faults::FaultPlanBuilder;
use vlsi_noc::NocNetwork;
use vlsi_prng::Prng;
use vlsi_runtime::mix::mixed_jobs;
use vlsi_runtime::{
    Fifo, JobSpec, Priority, Runtime, RuntimeConfig, RuntimeSummary, SchedPolicy,
    SmallestFitBackfill, Workload,
};
use vlsi_telemetry::TelemetryHandle;
use vlsi_topology::{Cluster, Coord};

/// The workload seed every bench run replays (the paper's year).
pub const SEED: u64 = 2012;

/// Jobs in the Ablation I policy mix.
pub const MIX_JOBS: usize = 48;

/// Mixed jobs in the acceptance run (plus one doomed straggler = 55).
pub const ACCEPT_JOBS: usize = 54;

fn policy(name: &str) -> Box<dyn SchedPolicy> {
    match name {
        "fifo" => Box::new(Fifo),
        "priority" => Box::new(Priority),
        "backfill" => Box::new(SmallestFitBackfill),
        other => panic!("unknown policy {other}"),
    }
}

/// FNV-1a over the runtime's full debug-formatted event log.
pub fn event_log_fnv(rt: &Runtime) -> u64 {
    let mut text = String::new();
    for e in rt.events() {
        let _ = writeln!(text, "{e:?}");
    }
    fnv1a(text.as_bytes())
}

/// The Ablation I mix: 48 jobs, 8×8 die, no faults.
pub fn sched_mix(policy_name: &str) -> RuntimeSummary {
    let chip = VlsiChip::new(8, 8, Cluster::default());
    let mut rt = Runtime::new(chip, policy(policy_name), RuntimeConfig::default());
    for spec in mixed_jobs(SEED, MIX_JOBS) {
        rt.submit(spec);
    }
    rt.run_until_idle(500_000).expect("mix must drain")
}

/// The acceptance suite's 55-job mix: 54 mixed jobs plus a doomed
/// 16-cluster straggler, five mid-run defects, live telemetry — the
/// workload the tier-1 scheduler tests pin. Returns the summary and the
/// event-log checksum.
pub fn sched_acceptance(policy_name: &str) -> (RuntimeSummary, u64) {
    let chip = VlsiChip::with_telemetry(8, 8, Cluster::default(), TelemetryHandle::active());
    let mut rt = Runtime::new(chip, policy(policy_name), RuntimeConfig::default());
    rt.inject_defect_at(4, Coord::new(1, 1));
    rt.inject_defect_at(8, Coord::new(5, 4));
    rt.inject_defect_at(12, Coord::new(3, 6));
    rt.inject_defect_at(18, Coord::new(6, 2));
    rt.inject_defect_at(26, Coord::new(2, 5));
    for spec in mixed_jobs(SEED, ACCEPT_JOBS) {
        rt.submit(spec);
    }
    rt.submit(JobSpec::new("doomed", 16, Workload::Idle { ticks: 10 }).with_deadline(1));
    let summary = rt.run_until_idle(500_000).expect("the mix must drain");
    let fnv = event_log_fnv(&rt);
    (summary, fnv)
}

/// The Ablation II NoC batch: 60 worms on an 8×8 mesh under transient
/// link faults at `rate`. Returns `(delivered, retransmissions)`.
pub fn faults_noc(rate: f64) -> (usize, u64) {
    let (w, h) = (8u16, 8u16);
    let mut net = NocNetwork::with_telemetry(w, h, TelemetryHandle::active());
    let plan = FaultPlanBuilder::new(SEED)
        .grid(w, h)
        .horizon(192)
        .link_down_rate(rate)
        .link_corrupt_rate(rate)
        .permanent_fraction(0.0)
        .build();
    net.attach_fault_plan(plan);
    let mut rng = Prng::seed_from_u64(SEED);
    for _ in 0..60 {
        let src = Coord::new(rng.gen_range(0..w), rng.gen_range(0..h));
        let dest = Coord::new(rng.gen_range(0..w), rng.gen_range(0..h));
        let payload: Vec<u64> = (0..rng.gen_range(1..8u64)).collect();
        net.inject(src, dest, payload).unwrap();
    }
    net.run_until_drained(4_000_000).expect("must drain");
    let delivered = net.take_delivered().len();
    let retrans = net.telemetry().snapshot().counter("noc.retransmissions");
    (delivered, retrans)
}

/// The Ablation II scheduler batch: the 32-job mix under permanent
/// switch faults at `rate`.
pub fn faults_sched(rate: f64) -> RuntimeSummary {
    let chip = VlsiChip::new(8, 8, Cluster::default());
    let mut rt = Runtime::new(chip, Box::new(Fifo), RuntimeConfig::default());
    let plan = FaultPlanBuilder::new(SEED)
        .grid(8, 8)
        .horizon(100)
        .switch_stuck_rate(rate)
        .build();
    rt.attach_fault_plan(plan);
    for spec in mixed_jobs(SEED, 32) {
        rt.submit(spec);
    }
    rt.run_until_idle(500_000).expect("mix must drain")
}

/// Gather/release churn on a 32×32 die: every round gathers a
/// Fibonacci-sized region, retires the oldest tenant past a cap, and
/// runs the two admission probes (`largest_gatherable`, `free_clusters`)
/// the scheduler leans on. Returns a checksum over every probe answer,
/// so the optimised index must reproduce the slow scans bit for bit.
pub fn gather_release_churn(rounds: usize) -> u64 {
    let mut chip = VlsiChip::new(32, 32, Cluster::default());
    let sizes = [3usize, 5, 8, 13, 21, 34];
    let mut live: VecDeque<ProcessorId> = VecDeque::new();
    let mut acc = 0u64;
    for round in 0..rounds {
        let k = sizes[round % sizes.len()];
        if let Ok(out) = chip.gather_any(k) {
            live.push_back(out.id);
        }
        if live.len() > 24 {
            let id = live.pop_front().unwrap();
            chip.release_processor(id).expect("churn release");
        }
        acc = acc
            .wrapping_mul(1_000_003)
            .wrapping_add(chip.largest_gatherable() as u64);
        acc = acc
            .wrapping_mul(1_000_003)
            .wrapping_add(chip.free_clusters() as u64);
    }
    for id in live {
        chip.release_processor(id).expect("drain release");
    }
    acc.wrapping_add(chip.free_clusters() as u64)
}

/// The 64×64 chaos mix: a large die where every per-tick occupancy scan
/// hurts, 40 mixed jobs, and ~8 switches sticking mid-run. Returns the
/// summary and the event-log checksum.
pub fn chaos_mix() -> (RuntimeSummary, u64) {
    let chip = VlsiChip::new(64, 64, Cluster::default());
    let mut rt = Runtime::new(chip, Box::new(Fifo), RuntimeConfig::default());
    let plan = FaultPlanBuilder::new(SEED)
        .grid(64, 64)
        .horizon(120)
        .switch_stuck_rate(0.002)
        .build();
    rt.attach_fault_plan(plan);
    for spec in mixed_jobs(SEED, 40) {
        rt.submit(spec);
    }
    let summary = rt.run_until_idle(500_000).expect("chaos mix must drain");
    let fnv = event_log_fnv(&rt);
    (summary, fnv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_is_deterministic_and_restores_the_die() {
        assert_eq!(gather_release_churn(24), gather_release_churn(24));
    }

    #[test]
    fn acceptance_checksum_replays() {
        let (a_sum, a_fnv) = sched_acceptance("fifo");
        let (b_sum, b_fnv) = sched_acceptance("fifo");
        assert_eq!(a_fnv, b_fnv, "event log must replay bit-identically");
        assert_eq!(a_sum.makespan, b_sum.makespan);
        assert_eq!(a_sum.completed + a_sum.failed, (ACCEPT_JOBS + 1) as u64);
    }

    #[test]
    fn chaos_mix_replays() {
        let (a, a_fnv) = chaos_mix();
        let (b, b_fnv) = chaos_mix();
        assert_eq!(a_fnv, b_fnv);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.completed + a.failed, 40);
    }
}

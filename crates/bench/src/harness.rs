//! The BENCH emitter: median-of-N timing and machine-readable JSON.
//!
//! The criterion shim reports a wall-clock *mean*, which is fine for the
//! printed ablation tables but too noisy to track a perf trajectory
//! across commits. The `bench` runner (`src/bin/bench.rs`) times each
//! workload here instead — a fixed iteration count, per-iteration
//! samples, and the *median* ns/iter — and writes `BENCH_*.json` files
//! at the repo root so every PR's numbers are diffable.

use std::fmt::Write as _;
use std::time::Instant;

/// One timed workload inside a BENCH file.
#[derive(Clone, Debug)]
pub struct BenchSample {
    /// Workload name (stable across commits; the trajectory key).
    pub name: String,
    /// Median time per iteration, nanoseconds.
    pub median_ns: u64,
    /// Iterations per second implied by the median.
    pub ops_per_s: f64,
    /// Samples taken.
    pub iters: u64,
    /// Workload-specific integers worth pinning (e.g. a makespan or an
    /// event-log checksum), emitted verbatim into the JSON.
    pub extra: Vec<(&'static str, u64)>,
}

/// Times `routine` `iters` times and reports the median. The routine
/// returns a `u64` sink value (kept out of the optimizer's reach); the
/// sink of the *last* iteration is surfaced so callers can pin it.
pub fn measure(name: &str, iters: u64, mut routine: impl FnMut() -> u64) -> (BenchSample, u64) {
    assert!(iters > 0, "at least one iteration");
    let mut samples = Vec::with_capacity(iters as usize);
    let mut sink = 0u64;
    for _ in 0..iters {
        let t = Instant::now();
        sink = std::hint::black_box(routine());
        samples.push(t.elapsed().as_nanos() as u64);
    }
    samples.sort_unstable();
    let median_ns = median_of_sorted(&samples);
    let ops_per_s = if median_ns == 0 {
        0.0
    } else {
        1e9 / median_ns as f64
    };
    (
        BenchSample {
            name: name.to_string(),
            median_ns,
            ops_per_s,
            iters,
            extra: Vec::new(),
        },
        sink,
    )
}

/// Builds a sample from externally-timed per-iteration nanoseconds —
/// used when a workload times a sub-phase (e.g. execution only, setup
/// excluded) rather than letting [`measure`] time the whole routine.
pub fn sample_from_times(name: &str, mut times: Vec<u64>) -> BenchSample {
    assert!(!times.is_empty(), "at least one timed iteration");
    times.sort_unstable();
    let median_ns = median_of_sorted(&times);
    let ops_per_s = if median_ns == 0 {
        0.0
    } else {
        1e9 / median_ns as f64
    };
    BenchSample {
        name: name.to_string(),
        median_ns,
        ops_per_s,
        iters: times.len() as u64,
        extra: Vec::new(),
    }
}

fn median_of_sorted(sorted: &[u64]) -> u64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2
    }
}

/// The current git revision (short), or `"unknown"` outside a checkout.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Renders one BENCH file. The format is deliberately flat: every key a
/// trajectory tool needs sits at a fixed path.
pub fn render_json(bench: &str, seed: u64, git_rev: &str, samples: &[BenchSample]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"{bench}\",");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(out, "  \"git_rev\": \"{git_rev}\",");
    out.push_str("  \"benches\": [\n");
    for (i, s) in samples.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(
            out,
            "\"name\": \"{}\", \"iters\": {}, \"median_ns_per_iter\": {}, \"ops_per_sec\": {:.6}",
            s.name, s.iters, s.median_ns, s.ops_per_s
        );
        for (k, v) in &s.extra {
            let _ = write!(out, ", \"{k}\": {v}");
        }
        out.push('}');
        if i + 1 < samples.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Validates a BENCH document: it must parse as the flat shape
/// [`render_json`] emits and carry every required key. Used by the CI
/// smoke step so the perf pipeline cannot silently rot.
pub fn validate_json(text: &str) -> Result<(), String> {
    for key in ["\"bench\"", "\"seed\"", "\"git_rev\"", "\"benches\""] {
        if !text.contains(key) {
            return Err(format!("missing top-level key {key}"));
        }
    }
    let seed = field_u64(text, "\"seed\"").ok_or("\"seed\" is not an integer")?;
    let _ = seed;
    if !text.contains("\"git_rev\": \"") {
        return Err("\"git_rev\" is not a string".into());
    }
    let entries = text.matches("\"name\"").count();
    if entries == 0 {
        return Err("\"benches\" array is empty".into());
    }
    for key in ["\"median_ns_per_iter\"", "\"ops_per_sec\"", "\"iters\""] {
        if text.matches(key).count() != entries {
            return Err(format!("every bench entry needs {key}"));
        }
    }
    // Every median must parse as an integer.
    let mut rest = text;
    while let Some(pos) = rest.find("\"median_ns_per_iter\":") {
        rest = &rest[pos + "\"median_ns_per_iter\":".len()..];
        let val: String = rest
            .trim_start()
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        if val.is_empty() {
            return Err("median_ns_per_iter is not an integer".into());
        }
    }
    // Balanced braces/brackets — a truncated write must not validate.
    let (mut braces, mut brackets) = (0i64, 0i64);
    for c in text.chars() {
        match c {
            '{' => braces += 1,
            '}' => braces -= 1,
            '[' => brackets += 1,
            ']' => brackets -= 1,
            _ => {}
        }
    }
    if braces != 0 || brackets != 0 {
        return Err("unbalanced JSON braces/brackets".into());
    }
    Ok(())
}

/// Extracts `(name, median_ns_per_iter)` pairs from a BENCH document,
/// in file order. Used by the `--check` regression diff.
pub fn parse_medians(text: &str) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find("\"name\": \"") {
        rest = &rest[pos + "\"name\": \"".len()..];
        let Some(end) = rest.find('"') else { break };
        let name = rest[..end].to_string();
        rest = &rest[end..];
        if let Some(median) = field_u64(rest, "\"median_ns_per_iter\"") {
            out.push((name, median));
        }
    }
    out
}

/// The document's top-level seed, if it parses.
pub fn parse_seed(text: &str) -> Option<u64> {
    field_u64(text, "\"seed\"")
}

fn field_u64(text: &str, key: &str) -> Option<u64> {
    let pos = text.find(key)?;
    let rest = text[pos + key.len()..].trim_start().strip_prefix(':')?;
    let val: String = rest
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    val.parse().ok()
}

/// FNV-1a over a byte string — the checksum the sched bench uses to pin
/// bit-identical event logs across the FabricIndex swap.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_median_and_sink() {
        let mut calls = 0u64;
        let (s, sink) = measure("spin", 5, || {
            calls += 1;
            calls * 10
        });
        assert_eq!(calls, 5);
        assert_eq!(sink, 50);
        assert_eq!(s.iters, 5);
        assert!(s.ops_per_s > 0.0);
    }

    #[test]
    fn median_is_the_middle_sample() {
        assert_eq!(median_of_sorted(&[1, 2, 9]), 2);
        assert_eq!(median_of_sorted(&[1, 3, 5, 9]), 4);
        assert_eq!(median_of_sorted(&[7]), 7);
    }

    #[test]
    fn rendered_json_validates() {
        let mut s = measure("w", 1, || 1).0;
        s.extra.push(("makespan", 42));
        let doc = render_json("sched", 2012, "abc123", &[s]);
        validate_json(&doc).unwrap();
        assert!(doc.contains("\"makespan\": 42"));
        assert!(doc.contains("\"seed\": 2012"));
    }

    #[test]
    fn validation_rejects_broken_documents() {
        assert!(validate_json("{}").is_err());
        assert!(validate_json("{\"bench\": \"x\", \"seed\": 1}").is_err());
        let good = render_json("x", 1, "r", &[measure("w", 1, || 0).0]);
        // Truncation must not validate.
        assert!(validate_json(&good[..good.len() - 4]).is_err());
        assert!(validate_json(&good.replace("\"seed\": 1", "\"seed\": \"s\"")).is_err());
    }

    #[test]
    fn medians_and_seed_parse_back_out() {
        let samples = [
            BenchSample {
                name: "alpha".into(),
                median_ns: 1200,
                ops_per_s: 1.0,
                iters: 5,
                extra: vec![("makespan", 9)],
            },
            BenchSample {
                name: "beta".into(),
                median_ns: 34,
                ops_per_s: 2.0,
                iters: 5,
                extra: Vec::new(),
            },
        ];
        let doc = render_json("x", 2012, "rev", &samples);
        assert_eq!(parse_seed(&doc), Some(2012));
        assert_eq!(
            parse_medians(&doc),
            vec![("alpha".to_string(), 1200), ("beta".to_string(), 34)]
        );
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), fnv1a(b"a"));
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}

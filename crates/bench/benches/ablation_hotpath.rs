//! Ablation IV: simulator hot-path throughput.
//!
//! The paper's runtime-scaling claim (§3.3–3.4) only means something if
//! the *simulator's* admission probes and NoC tick are not the
//! bottleneck. This ablation times the two synthetic stress workloads —
//! gather/release churn with per-round admission probes on a 32×32 die,
//! and the 64×64 chaos mix — plus the acceptance suite's 55-job mix,
//! and pins their determinism: every workload must reproduce its
//! checksums exactly when replayed, so occupancy-index optimisations
//! cannot change behaviour, only speed.

use criterion::{criterion_group, criterion_main, Criterion};
use vlsi_bench::hotpath::{chaos_mix, gather_release_churn, sched_acceptance};

fn bench_ablation(c: &mut Criterion) {
    println!("\nAblation IV — simulator hot-path throughput:");

    let churn = gather_release_churn(120);
    assert_eq!(
        churn,
        gather_release_churn(120),
        "churn probes must replay bit-identically"
    );

    let (chaos_a, chaos_fnv_a) = chaos_mix();
    let (chaos_b, chaos_fnv_b) = chaos_mix();
    assert_eq!(chaos_fnv_a, chaos_fnv_b, "chaos event log must replay");
    assert_eq!(chaos_a.makespan, chaos_b.makespan);
    assert_eq!(chaos_a.completed + chaos_a.failed, 40, "no job in limbo");

    let (accept, accept_fnv) = sched_acceptance("fifo");
    let (accept2, accept_fnv2) = sched_acceptance("fifo");
    assert_eq!(accept_fnv, accept_fnv2, "55-job event log must replay");
    assert_eq!(accept.makespan, accept2.makespan);

    println!("  churn probe checksum   {churn:#018x}");
    println!(
        "  chaos 64x64            makespan {} fnv {chaos_fnv_a:#018x}",
        chaos_a.makespan
    );
    println!(
        "  accept55 fifo          makespan {} fnv {accept_fnv:#018x}",
        accept.makespan
    );

    let mut group = c.benchmark_group("ablation-IV");
    group.bench_function("gather-release-churn-32x32", |b| {
        b.iter(|| gather_release_churn(120));
    });
    group.bench_function("chaos-mix-64x64", |b| {
        b.iter(|| chaos_mix().0.makespan);
    });
    group.bench_function("accept55-fifo", |b| {
        b.iter(|| sched_acceptance("fifo").0.makespan);
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);

//! Ablation B: array capacity `C` versus object-cache hit rate.
//!
//! §2.4's rule — a reference hits iff its dependency (stack) distance is
//! at most `C` — predicts the virtual-hardware hit rate as a function of
//! capacity. This bench runs the same locality-controlled random
//! datapaths in scalar mode at several capacities and confirms the
//! prediction (and the LRU inclusion property) on the live processor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vlsi_ap::{AdaptiveProcessor, ApConfig};
use vlsi_workloads::RandomDatapath;

fn hit_rate(capacity: usize, locality: f64, seed: u64) -> f64 {
    let gen = RandomDatapath {
        n_objects: 24,
        n_elements: 200,
        locality,
        seed,
    };
    let mut ap = AdaptiveProcessor::new(ApConfig {
        compute_objects: capacity,
        ..ApConfig::default()
    });
    ap.install(gen.objects()).unwrap();
    ap.execute_scalar(&gen.stream()).unwrap();
    ap.metrics().hit_rate()
}

fn bench_ablation(c: &mut Criterion) {
    println!("\nAblation B — capacity vs object-cache hit rate (24 objects, scalar mode):");
    println!(
        "{:>10} {:>14} {:>14}",
        "capacity", "hit(local)", "hit(random)"
    );
    let mut prev_local = 0.0;
    for capacity in [2usize, 4, 8, 16, 24] {
        let local = hit_rate(capacity, 0.9, 7);
        let random = hit_rate(capacity, 0.0, 7);
        println!(
            "{capacity:>10} {:>13.2}% {:>13.2}%",
            local * 100.0,
            random * 100.0
        );
        // Inclusion property on the live processor.
        assert!(local + 1e-9 >= prev_local, "hit rate fell with capacity");
        prev_local = local;
        // Locality helps at every capacity below full residency.
        if capacity < 24 {
            assert!(local >= random);
        }
    }
    // At full capacity only compulsory misses remain.
    assert!(hit_rate(24, 0.0, 7) > 0.85);

    let mut g = c.benchmark_group("ablation-B/scalar-execution");
    for capacity in [4usize, 16] {
        g.bench_with_input(
            BenchmarkId::from_parameter(capacity),
            &capacity,
            |b, &cap| {
                let gen = RandomDatapath {
                    n_objects: 24,
                    n_elements: 200,
                    locality: 0.5,
                    seed: 7,
                };
                let objects = gen.objects();
                let stream = gen.stream();
                b.iter(|| {
                    let mut ap = AdaptiveProcessor::new(ApConfig {
                        compute_objects: cap,
                        ..ApConfig::default()
                    });
                    ap.install(objects.clone()).unwrap();
                    ap.execute_scalar(&stream).unwrap()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);

//! Criterion bench behind Figure 3: one functional-simulator run per
//! array size at the two extreme localities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vlsi_csd::sim::LocalityWorkload;
use vlsi_csd::CsdSimulator;

fn bench_csd(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure3/configure-random-datapath");
    for n in [16usize, 64, 256] {
        for (label, locality) in [("random", 0.0), ("local", 0.9)] {
            let wl = LocalityWorkload {
                n_objects: n,
                locality,
                seed: 42,
            };
            let requests = wl.generate();
            let sim = CsdSimulator::new(n, n);
            g.bench_with_input(BenchmarkId::new(label, n), &requests, |b, reqs| {
                b.iter(|| sim.run(reqs))
            });
        }
    }
    g.finish();

    // The sanity gate: the Figure 3 claims hold on the benched inputs.
    for n in [16usize, 64, 256] {
        let u = CsdSimulator::new(n, n).sweep_point(0.0, 20, 42);
        assert!(u.used_channels < n, "N={n}: all channels used");
        assert!(u.rejected == 0, "N={n}: rejections with N channels");
    }
}

criterion_group!(benches, bench_csd);
criterion_main!(benches);

//! Ablation F: adaptive-processor scale versus clock and throughput.
//!
//! §1's second benefit: "It is probably coordination between clock cycle
//! time and the number of resources that control the performance". A
//! bigger AP hosts bigger streaming datapaths, but its chaining wire spans
//! a larger compute array, so the clock slows with √area. This ablation
//! sweeps the AP's compute scale at the 2012 node and reports the
//! resulting chip-level peak GOPS (composition-aware wire delay) — peak
//! throughput favours many small APs; capability favours few big ones,
//! which is exactly why the paper makes the scale *dynamic*.

use criterion::{criterion_group, criterion_main, Criterion};
use vlsi_cost::itrs::year;
use vlsi_cost::scaling::ApComposition;
use vlsi_cost::wire::wire_delay_ns_for;

fn bench_ablation(c: &mut Criterion) {
    let p = year(2012).unwrap();
    println!("\nAblation F — AP scale vs clock and peak GOPS (2012 node, 1:1 PO:MO):");
    println!(
        "{:>8} {:>8} {:>12} {:>12} {:>12}",
        "PO/AP", "APs", "delay [ns]", "GOPS", "GOPS/AP"
    );
    let mut rows = Vec::new();
    for scale in [4u32, 8, 16, 32, 64] {
        let comp = ApComposition {
            compute_objects: scale,
            memory_objects: scale,
        };
        let aps = comp.aps_per_die(&p);
        let delay = wire_delay_ns_for(f64::from(scale), &p);
        let gops = comp.peak_gops_scaled(&p);
        println!(
            "{scale:>8} {aps:>8} {delay:>12.2} {gops:>12.1} {:>12.1}",
            gops / aps.max(1) as f64
        );
        rows.push((scale, delay, gops));
    }
    // The trade-off is real and monotone on both sides:
    for w in rows.windows(2) {
        assert!(
            w[1].1 > w[0].1,
            "bigger APs must have slower chaining clocks"
        );
    }
    // Small APs win on aggregate peak GOPS (the wire penalty dominates).
    assert!(
        rows[0].2 > rows.last().unwrap().2,
        "4-object APs must out-GOPS 64-object APs"
    );
    // The model's clean identity: delay ∝ compute area, APs ∝ 1/area, so
    // GOPS *per AP* is scale-invariant — chip GOPS falls as 1/scale while
    // per-processor capability grows linearly. Fusing is therefore free in
    // per-AP throughput and costs only aggregate peak — the quantified
    // form of the paper's general-purpose/application-specific balance.
    let per_ap = |&(scale, delay, _): &(u32, f64, f64)| f64::from(scale) / delay;
    let base = per_ap(&rows[0]);
    for r in &rows {
        assert!(
            (per_ap(r) / base - 1.0).abs() < 0.05,
            "GOPS/AP should be scale-invariant: {} vs {base}",
            per_ap(r)
        );
    }

    c.bench_function("ablation-F/gops-sweep", |b| {
        b.iter(|| {
            (4u32..=64)
                .step_by(4)
                .map(|s| {
                    ApComposition {
                        compute_objects: s,
                        memory_objects: s,
                    }
                    .peak_gops_scaled(&p)
                })
                .sum::<f64>()
        })
    });
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);

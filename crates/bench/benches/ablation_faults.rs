//! Ablation II: degraded-mode throughput versus fault rate.
//!
//! The fault-tolerant transport stack (checksummed worms, delivery
//! timeouts, capped-backoff retransmission, adaptive misrouting, and
//! runtime-level defect recovery) costs nothing when the die is healthy
//! and degrades gracefully when it is not. This ablation sweeps a
//! transient link-fault rate of 0% / 1% / 5% over the NoC and the same
//! rates as permanent switch faults under the scheduler, and tabulates
//! worm latency, retransmissions, undeliverable worms, makespan, and the
//! completion split at each point.

use criterion::{criterion_group, criterion_main, Criterion};
use vlsi_core::VlsiChip;
use vlsi_faults::FaultPlanBuilder;
use vlsi_noc::NocNetwork;
use vlsi_prng::Prng;
use vlsi_runtime::mix::mixed_jobs;
use vlsi_runtime::{Fifo, Runtime, RuntimeConfig, RuntimeSummary};
use vlsi_telemetry::TelemetryHandle;
use vlsi_topology::{Cluster, Coord};

const SEED: u64 = 2012;
const RATES: [f64; 3] = [0.0, 0.01, 0.05];
const WORMS: usize = 60;
const JOBS: usize = 32;

struct NocPoint {
    mean_latency: f64,
    delivered: usize,
    undeliverable: usize,
    retransmissions: u64,
    misroutes: u64,
}

/// A fixed 60-worm batch on an 8×8 mesh under transient link faults.
fn run_noc(rate: f64) -> NocPoint {
    let (w, h) = (8u16, 8u16);
    // Retransmission/misroute bookkeeping lives in the telemetry
    // registry now, so the batch runs against an enabled handle.
    let mut net = NocNetwork::with_telemetry(w, h, TelemetryHandle::active());
    // The horizon matches the batch's drain window, so fault windows
    // overlap live traffic instead of landing on an empty mesh.
    let plan = FaultPlanBuilder::new(SEED)
        .grid(w, h)
        .horizon(192)
        .link_down_rate(rate)
        .link_corrupt_rate(rate)
        .permanent_fraction(0.0) // transient faults: the mesh always heals
        .build();
    net.attach_fault_plan(plan);
    let mut rng = Prng::seed_from_u64(SEED);
    let mut worms = Vec::new();
    for _ in 0..WORMS {
        let src = Coord::new(rng.gen_range(0..w), rng.gen_range(0..h));
        let dest = Coord::new(rng.gen_range(0..w), rng.gen_range(0..h));
        let payload: Vec<u64> = (0..rng.gen_range(1..8u64)).collect();
        worms.push(net.inject(src, dest, payload).unwrap());
    }
    net.run_until_drained(4_000_000).expect("must drain");
    let delivered = net.take_delivered();
    let failed = net.take_failed();
    assert_eq!(delivered.len() + failed.len(), WORMS, "full accounting");
    let snap = net.telemetry().snapshot();
    NocPoint {
        mean_latency: delivered.iter().map(|(_, l)| *l as f64).sum::<f64>()
            / delivered.len().max(1) as f64,
        delivered: delivered.len(),
        undeliverable: failed.len(),
        retransmissions: snap.counter("noc.retransmissions"),
        misroutes: snap.counter("noc.misroutes"),
    }
}

/// The Ablation I job mix under permanent switch faults at `rate`.
fn run_sched(rate: f64) -> RuntimeSummary {
    let chip = VlsiChip::new(8, 8, Cluster::default());
    let mut rt = Runtime::new(chip, Box::new(Fifo), RuntimeConfig::default());
    let plan = FaultPlanBuilder::new(SEED)
        .grid(8, 8)
        .horizon(100)
        .switch_stuck_rate(rate) // per-switch over the horizon
        .build();
    rt.attach_fault_plan(plan);
    for spec in mixed_jobs(SEED, JOBS) {
        rt.submit(spec);
    }
    rt.run_until_idle(500_000).expect("mix must drain")
}

fn bench_ablation(c: &mut Criterion) {
    println!("\nAblation II — degraded-mode throughput vs fault rate (8×8, {WORMS} worms / {JOBS}-job mix):");
    println!(
        "{:>6} {:>9} {:>11} {:>7} {:>9} {:>9} | {:>9} {:>10} {:>7} {:>7}",
        "rate",
        "latency",
        "delivered",
        "undeliv",
        "retrans",
        "misroute",
        "makespan",
        "completed",
        "failed",
        "faults"
    );
    let mut noc_rows = Vec::new();
    let mut sched_rows = Vec::new();
    for rate in RATES {
        let n = run_noc(rate);
        let s = run_sched(rate);
        println!(
            "{:>6.2} {:>9.1} {:>11} {:>7} {:>9} {:>9} | {:>9} {:>10} {:>7} {:>7}",
            rate,
            n.mean_latency,
            n.delivered,
            n.undeliverable,
            n.retransmissions,
            n.misroutes,
            s.makespan,
            s.completed,
            s.failed,
            s.stats.faults_reported
        );
        noc_rows.push(n);
        sched_rows.push(s);
    }

    // A healthy mesh pays nothing for the fault machinery: no
    // retransmissions, no losses, everything delivered.
    assert_eq!(noc_rows[0].delivered, WORMS);
    assert_eq!(noc_rows[0].undeliverable, 0);
    assert_eq!(noc_rows[0].retransmissions, 0);
    assert_eq!(sched_rows[0].stats.faults_reported, 0);

    // Under faults the stack works for its living — recovery activity is
    // visible, yet every worm and every job still resolves.
    assert!(
        noc_rows[2].retransmissions > 0 || noc_rows[2].misroutes > 0,
        "5% faults must exercise recovery"
    );
    for (n, s) in noc_rows.iter().zip(&sched_rows) {
        assert_eq!(n.delivered + n.undeliverable, WORMS);
        assert_eq!(s.completed + s.failed, JOBS as u64, "no job in limbo");
    }
    assert!(sched_rows[2].stats.faults_reported > 0, "faults must land");

    // Degradation is graceful: the faulty mesh is slower per worm, not
    // silently lossy.
    assert!(
        noc_rows[2].mean_latency >= noc_rows[0].mean_latency,
        "faults cannot make the mesh faster ({:.1} vs {:.1})",
        noc_rows[2].mean_latency,
        noc_rows[0].mean_latency
    );

    // Determinism: replaying the worst point reproduces it exactly.
    let replay = run_noc(RATES[2]);
    assert_eq!(replay.retransmissions, noc_rows[2].retransmissions);
    assert_eq!(replay.delivered, noc_rows[2].delivered);
    let replay = run_sched(RATES[2]);
    assert_eq!(replay.makespan, sched_rows[2].makespan);
    assert_eq!(replay.stats, sched_rows[2].stats);

    let mut group = c.benchmark_group("ablation-II");
    for rate in RATES {
        group.bench_function(format!("noc-{rate}"), |b| {
            b.iter(|| run_noc(rate).delivered);
        });
        group.bench_function(format!("sched-{rate}"), |b| {
            b.iter(|| run_sched(rate).makespan);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);

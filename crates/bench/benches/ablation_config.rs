//! Ablation G: configuration-worm strategy — unicast fleet vs traveling
//! worm (the path-shaped configuration Figure 7(c) draws).
//!
//! Unicast worms pipeline through the NoC (latency ≈ farthest cluster +
//! serialisation) but each pays the approach from the supervisor. The
//! traveling worm pays the approach once and then single-hop legs along
//! the fold, strictly serially. The bench sweeps region size and distance
//! from the supervisor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vlsi_core::{ConfigStrategy, VlsiChip};
use vlsi_topology::{Cluster, Coord, Region};

fn latency(strategy: ConfigStrategy, origin: Coord, side: u16) -> u64 {
    let mut chip = VlsiChip::new(12, 12, Cluster::default());
    chip.gather_with(Region::rect(origin, side, side), strategy)
        .unwrap()
        .config_latency
}

fn bench_ablation(c: &mut Criterion) {
    println!("\nAblation G — configuration strategy (12x12 chip, supervisor at (0,0)):");
    println!(
        "{:>8} {:>10} {:>14} {:>14}",
        "region", "placement", "unicast [cyc]", "traveling [cyc]"
    );
    for (side, origin, tag) in [
        (2u16, Coord::new(0, 0), "near"),
        (2, Coord::new(10, 10), "far"),
        (4, Coord::new(0, 0), "near"),
        (4, Coord::new(8, 8), "far"),
        (6, Coord::new(6, 6), "far"),
    ] {
        let u = latency(ConfigStrategy::UnicastWorms, origin, side);
        let t = latency(ConfigStrategy::TravelingWorm, origin, side);
        println!("{side:>7}² {tag:>10} {u:>14} {t:>14}");
        // Unicast pipelines: its makespan never exceeds the serial worm's.
        assert!(
            u <= t,
            "{side}x{side} at {origin:?}: unicast {u} > traveling {t}"
        );
    }
    println!(
        "\nunicast wins on end-to-end latency (it pipelines); the traveling\n\
         worm's advantage is traffic: one approach instead of N."
    );

    let mut g = c.benchmark_group("ablation-G/gather");
    for strategy in [ConfigStrategy::UnicastWorms, ConfigStrategy::TravelingWorm] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{strategy:?}")),
            &strategy,
            |b, &s| b.iter(|| latency(s, Coord::new(8, 8), 4)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);

//! Ablation C: fused-processor size versus configuration latency.
//!
//! §3.3 scales processors by wormhole-routing configuration data to every
//! cluster's switch. The cost of an up-scale is therefore NoC-bound:
//! worms × distance. This bench sweeps the gathered region size and
//! reports worms, switch stores, and the maximum worm latency — the
//! end-to-end reconfiguration cost the paper claims is "very low".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vlsi_core::VlsiChip;
use vlsi_topology::{Cluster, Coord, Region};

fn bench_ablation(c: &mut Criterion) {
    println!("\nAblation C — region size vs configuration latency (8x8 chip):");
    println!(
        "{:>8} {:>8} {:>8} {:>14} {:>14}",
        "region", "clusters", "worms", "cfg-latency", "switch-stores"
    );
    let mut prev = 0u64;
    for side in [1u16, 2, 3, 4, 6, 8] {
        let mut chip = VlsiChip::new(8, 8, Cluster::default());
        let out = chip
            .gather(Region::rect(Coord::new(0, 0), side, side))
            .unwrap();
        println!(
            "{:>7}² {:>8} {:>8} {:>14} {:>14}",
            side,
            side as u64 * side as u64,
            out.worms,
            out.config_latency,
            out.switch_stores
        );
        assert!(out.config_latency >= prev, "latency fell with region size");
        prev = out.config_latency;
    }

    let mut g = c.benchmark_group("ablation-C/gather");
    for side in [2u16, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(side), &side, |b, &side| {
            b.iter(|| {
                let mut chip = VlsiChip::new(8, 8, Cluster::default());
                chip.gather(Region::rect(Coord::new(0, 0), side, side))
                    .unwrap()
            })
        });
    }
    g.finish();

    // Ring gathers cost one extra chained hop, not a different regime.
    let mut chip = VlsiChip::new(8, 8, Cluster::default());
    let open = chip.gather(Region::rect(Coord::new(0, 0), 4, 2)).unwrap();
    let mut chip2 = VlsiChip::new(8, 8, Cluster::default());
    let ring = chip2
        .gather_ring(Region::rect(Coord::new(0, 0), 4, 2))
        .unwrap();
    println!(
        "\nring vs open 4x2: stores {} vs {}, latency {} vs {}",
        ring.switch_stores, open.switch_stores, ring.config_latency, open.config_latency
    );
    assert!(ring.switch_stores >= open.switch_stores);
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);

//! Ablation I: scheduling policy versus makespan and wait on a
//! contended multi-tenant job mix.
//!
//! §1 lets an application "request the resources" it needs; the runtime
//! crate arbitrates many such tenants. This ablation replays the same
//! deterministic 48-job mix (streaming kernels, basic-block programs,
//! idle reservations) through the three shipped policies and reports
//! makespan, mean wait, mean turnaround, utilization, and the
//! completion/failure split. FIFO convoys behind large requests; strict
//! priority breaks those convoys and finishes first; smallest-fit
//! backfill packs small jobs greedily but starves the large ones, and
//! the starvation tail costs more makespan than the packing saves.

use criterion::{criterion_group, criterion_main, Criterion};
use vlsi_core::VlsiChip;
use vlsi_runtime::mix::mixed_jobs;
use vlsi_runtime::{
    Fifo, Priority, Runtime, RuntimeConfig, RuntimeSummary, SchedPolicy, SmallestFitBackfill,
};
use vlsi_topology::Cluster;

const SEED: u64 = 2012;
const JOBS: usize = 48;

fn policy(name: &str) -> Box<dyn SchedPolicy> {
    match name {
        "fifo" => Box::new(Fifo),
        "priority" => Box::new(Priority),
        "backfill" => Box::new(SmallestFitBackfill),
        other => panic!("unknown policy {other}"),
    }
}

fn run_mix(name: &str) -> RuntimeSummary {
    let chip = VlsiChip::new(8, 8, Cluster::default());
    let mut rt = Runtime::new(chip, policy(name), RuntimeConfig::default());
    for spec in mixed_jobs(SEED, JOBS) {
        rt.submit(spec);
    }
    rt.run_until_idle(500_000).expect("mix must drain")
}

fn bench_ablation(c: &mut Criterion) {
    println!("\nAblation I — scheduling policy vs makespan/wait (8×8 chip, {JOBS}-job mix):");
    println!(
        "{:>10} {:>10} {:>11} {:>11} {:>7} {:>10} {:>8}",
        "policy", "makespan", "mean wait", "turnaround", "util", "completed", "failed"
    );
    let mut rows = Vec::new();
    for name in ["fifo", "priority", "backfill"] {
        let s = run_mix(name);
        println!(
            "{:>10} {:>10} {:>11.1} {:>11.1} {:>6.2} {:>10} {:>8}",
            s.policy,
            s.makespan,
            s.mean_wait,
            s.mean_turnaround,
            s.utilization,
            s.completed,
            s.failed
        );
        rows.push(s);
    }

    // Determinism: replaying a policy reproduces its numbers exactly.
    let replay = run_mix("fifo");
    assert_eq!(replay.makespan, rows[0].makespan, "fifo must replay");
    assert_eq!(replay.stats, rows[0].stats, "fifo counters must replay");

    // Every policy resolves the whole mix — no job left queued/running.
    for s in &rows {
        assert_eq!(
            s.completed + s.failed,
            JOBS as u64,
            "{}: mix must resolve",
            s.policy
        );
    }

    // The policies genuinely diverge on a contended mix.
    assert!(
        rows[0].makespan != rows[1].makespan && rows[1].makespan != rows[2].makespan,
        "policies must produce distinct schedules"
    );
    // Priority reordering breaks FIFO's submission-order convoys: it
    // finishes the mix sooner and keeps the die busier.
    assert!(
        rows[1].makespan < rows[0].makespan,
        "priority should beat fifo's convoys ({} vs {})",
        rows[1].makespan,
        rows[0].makespan
    );
    assert!(
        rows[1].utilization > rows[0].utilization,
        "priority should keep the die busier than fifo"
    );
    // Smallest-fit starves large requests: the packing win is eaten by
    // the starvation tail, stretching the makespan past FIFO's.
    assert!(
        rows[2].makespan > rows[0].makespan,
        "backfill's starvation tail should show up in the makespan ({} vs {})",
        rows[2].makespan,
        rows[0].makespan
    );

    let mut group = c.benchmark_group("ablation-I");
    for name in ["fifo", "priority", "backfill"] {
        group.bench_function(name, |b| {
            b.iter(|| run_mix(name).makespan);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);

//! Ablation A: channel provisioning versus routability.
//!
//! §6: "A reduction in the number of channels must be carefully performed
//! by processor architects because the number of channels determines the
//! routability." This bench quantifies the trade-off the paper leaves
//! qualitative: with k ∈ {N/8, N/4, N/2, N} channels, how many chaining
//! requests of a random datapath are rejected?

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vlsi_csd::sim::LocalityWorkload;
use vlsi_csd::CsdSimulator;

fn rejection_rate(n: usize, channels: usize, runs: usize) -> f64 {
    let sim = CsdSimulator::new(n, channels);
    let u = sim.sweep_point(0.0, runs, 0xAB1A);
    u.rejected as f64 / (u.rejected + u.granted).max(1) as f64
}

fn bench_ablation(c: &mut Criterion) {
    let n = 64usize;
    println!("\nAblation A — channels vs routability (N={n}, random datapaths):");
    println!("{:>10} {:>12} {:>12}", "channels", "reject-rate", "note");
    for (k, note) in [
        (n / 8, "starved"),
        (n / 4, "tight"),
        (n / 2, "paper's sufficient point"),
        (n, "overprovisioned"),
    ] {
        let r = rejection_rate(n, k, 30);
        println!("{:>10} {:>11.1}% {:>28}", k, r * 100.0, note);
    }
    // The paper's claim as a hard gate: N/2 suffices, N/8 does not.
    assert_eq!(rejection_rate(n, n, 30), 0.0);
    assert!(rejection_rate(n, n / 2, 30) < 0.02);
    assert!(rejection_rate(n, n / 8, 30) > 0.05);

    let mut g = c.benchmark_group("ablation-A/allocation");
    for k in [n / 8, n / 2, n] {
        let wl = LocalityWorkload {
            n_objects: n,
            locality: 0.0,
            seed: 1,
        };
        let reqs = wl.generate();
        let sim = CsdSimulator::new(n, k);
        g.bench_with_input(BenchmarkId::from_parameter(k), &reqs, |b, reqs| {
            b.iter(|| sim.run(reqs))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);

//! Ablation H: datapath width versus effective ILP.
//!
//! The paper motivates reconfiguration with per-application ILP ("each
//! application has its own characteristic TLP and ILP", §1). The dataflow
//! engine makes that measurable: a width-`w` multiply/reduce tree issues
//! up to `2w − 1` operations concurrently, and the ops/cycle the engine
//! sustains should grow with `w` until structural limits bite.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vlsi_ap::{AdaptiveProcessor, ApConfig};
use vlsi_object::Word;
use vlsi_workloads::StreamKernel;

fn ops_per_cycle(w: usize, len: u64) -> f64 {
    let kernel = StreamKernel::wide_tree(w, 1, len);
    let mut ap = AdaptiveProcessor::new(ApConfig {
        compute_objects: kernel.compute_working_set().max(16),
        memory_objects: 16,
        channels: (kernel.compute_working_set() + 16).max(16),
        ..ApConfig::default()
    });
    ap.install(kernel.objects.clone()).unwrap();
    for i in 0..len {
        ap.memory_mut(0).unwrap().store(i, Word(i + 1)).unwrap();
    }
    ap.configure(kernel.stream.clone()).unwrap();
    let report = ap.execute(0, 10_000_000).unwrap();
    // Verify while we're here.
    let expect = StreamKernel::wide_tree_reference(w, 1, &(1..=len).collect::<Vec<_>>());
    for (i, e) in expect.iter().enumerate() {
        assert_eq!(ap.memory(1).unwrap().peek(i as u64).unwrap().as_u64(), *e);
    }
    report.firings as f64 / report.cycles as f64
}

fn bench_ablation(c: &mut Criterion) {
    println!("\nAblation H — datapath width vs effective ILP (64-element stream):");
    println!("{:>8} {:>10} {:>12}", "width", "objects", "ops/cycle");
    let mut rows = Vec::new();
    for w in [1usize, 2, 4, 8, 16] {
        let ipc = ops_per_cycle(w, 64);
        println!("{w:>8} {:>10} {ipc:>12.2}", 2 * w - 1);
        rows.push((w, ipc));
    }
    // Wider trees must extract more ILP, up to the tested range.
    for pair in rows.windows(2) {
        assert!(
            pair[1].1 > pair[0].1 * 1.2,
            "width {} ({:.2}) should beat width {} ({:.2})",
            pair[1].0,
            pair[1].1,
            pair[0].0,
            pair[0].1
        );
    }

    let mut g = c.benchmark_group("ablation-H/stream");
    for w in [1usize, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, &w| {
            b.iter(|| ops_per_cycle(w, 32))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);

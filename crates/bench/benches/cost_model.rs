//! Criterion bench over the Table 1–4 analytical model.
//!
//! The model is closed-form; the bench documents that regenerating the
//! entire evaluation costs microseconds, and pins the Table 4 values as a
//! regression gate (a wrong constant fails the bench at setup).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vlsi_cost::scaling::{table4, ApComposition};

fn verify_table4() {
    let rows = table4(&ApComposition::default());
    let expected_aps = [12u64, 16, 21, 24, 34, 41];
    for (r, &aps) in rows.iter().zip(&expected_aps) {
        assert_eq!(r.available_aps, aps, "year {}", r.year);
    }
}

fn bench_cost_model(c: &mut Criterion) {
    verify_table4();
    let comp = ApComposition::default();
    c.bench_function("table4/full-recompute", |b| {
        b.iter(|| table4(black_box(&comp)))
    });
    c.bench_function("table1-3/area-totals", |b| {
        b.iter(|| {
            (
                vlsi_cost::area::physical_object_area(),
                vlsi_cost::area::memory_block_area(),
                vlsi_cost::area::control_objects_area(),
            )
        })
    });
    let p2012 = vlsi_cost::itrs::year(2012).unwrap();
    c.bench_function("table4/peak-gops-one-year", |b| {
        b.iter(|| black_box(&comp).peak_gops(black_box(&p2012)))
    });
}

criterion_group!(benches, bench_cost_model);
criterion_main!(benches);

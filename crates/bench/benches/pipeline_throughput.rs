//! Throughput of the management pipeline and the datapath engine: the
//! machinery behind every experiment, timed on the streaming kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vlsi_ap::{AdaptiveProcessor, ApConfig};
use vlsi_object::Word;
use vlsi_workloads::StreamKernel;

fn bench_pipeline(c: &mut Criterion) {
    // Configuration cost: cold (all compulsory misses) vs warm (cached).
    let mut g = c.benchmark_group("pipeline/configure");
    g.bench_function("cold", |b| {
        let kernel = StreamKernel::fanout_reduce([2, 3, 4], 16);
        b.iter(|| {
            let mut ap = AdaptiveProcessor::new(ApConfig::default());
            ap.install(kernel.objects.clone()).unwrap();
            ap.configure(kernel.stream.clone()).unwrap()
        })
    });
    g.bench_function("warm", |b| {
        let kernel = StreamKernel::fanout_reduce([2, 3, 4], 16);
        let mut ap = AdaptiveProcessor::new(ApConfig::default());
        ap.install(kernel.objects.clone()).unwrap();
        ap.configure(kernel.stream.clone()).unwrap();
        b.iter(|| ap.configure(kernel.stream.clone()).unwrap())
    });
    g.finish();

    // Streaming execution throughput in elements/second of host time.
    let mut g = c.benchmark_group("datapath/stream");
    for len in [64u64, 512] {
        g.throughput(Throughput::Elements(len));
        g.bench_with_input(BenchmarkId::new("axpy", len), &len, |b, &len| {
            let kernel = StreamKernel::axpy(3, 5, len);
            // Stream-load pointers advance as the datapath runs, so each
            // measured execution gets a freshly configured processor.
            b.iter_batched(
                || {
                    let mut ap = AdaptiveProcessor::new(ApConfig::default());
                    ap.install(kernel.objects.clone()).unwrap();
                    for i in 0..len {
                        ap.memory_mut(0).unwrap().store(i, Word(i)).unwrap();
                    }
                    ap.configure(kernel.stream.clone()).unwrap();
                    ap
                },
                |mut ap| ap.execute(0, 10_000_000).unwrap(),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);

//! Ablation D: virtual channels versus head-of-line blocking.
//!
//! The paper builds on Dally's virtual-channel flow control [18]. The
//! base router serialises worms per link; this ablation measures how a
//! short worm's latency behind a long configuration worm improves as the
//! link gains virtual channels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vlsi_noc::VcNetwork;
use vlsi_topology::Coord;

/// Latency of a 1-flit worm injected behind a long worm on the same row.
fn short_worm_latency(vcs: usize, long_len: u64) -> u64 {
    let mut net = VcNetwork::new(8, 2, vcs);
    net.inject(Coord::new(0, 0), Coord::new(7, 0), (0..long_len).collect())
        .unwrap();
    for _ in 0..10 {
        net.tick(); // let the long worm claim its path
    }
    let short = net
        .inject(Coord::new(1, 0), Coord::new(6, 0), vec![42])
        .unwrap();
    net.run_until_drained(1_000_000).unwrap();
    net.worm_latency(short).unwrap()
}

fn bench_ablation(c: &mut Criterion) {
    println!("\nAblation D — virtual channels vs head-of-line blocking:");
    println!(
        "{:>6} {:>20} {:>20}",
        "VCs", "short-worm latency", "vs 1 VC"
    );
    let base = short_worm_latency(1, 64);
    for vcs in [1usize, 2, 4] {
        let l = short_worm_latency(vcs, 64);
        println!("{vcs:>6} {l:>20} {:>19.2}x", base as f64 / l as f64);
        if vcs > 1 {
            assert!(l < base, "VCs must relieve blocking");
        }
    }

    let mut g = c.benchmark_group("ablation-D/contended-delivery");
    for vcs in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(vcs), &vcs, |b, &vcs| {
            b.iter(|| short_worm_latency(vcs, 64))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);

//! Ablation III: telemetry overhead — instrumented vs no-op vs
//! compiled-out.
//!
//! The observability layer must be free when it is off. This ablation
//! replays the PR-1 55-job scheduler mix three ways: with a live
//! registry (every `noc.*`/`core.*`/`ap.*`/`runtime.*` instrument
//! recording), with the default no-op handle (one branch per site), and
//! — via a separate invocation with `--features compile-out` — with the
//! sites compiled down to nothing. The no-op and compiled-out rows must
//! be indistinguishable from an uninstrumented simulator; the
//! instrumented row buys a full cross-layer snapshot and Chrome trace.
//!
//! Telemetry must also never perturb the simulation itself: all three
//! modes produce the identical makespan and event log, and two
//! instrumented runs export byte-identical snapshots.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use vlsi_core::VlsiChip;
use vlsi_runtime::mix::mixed_jobs;
use vlsi_runtime::{Fifo, Runtime, RuntimeConfig};
use vlsi_telemetry::{report, TelemetryHandle};
use vlsi_topology::Cluster;

const SEED: u64 = 2012;
const JOBS: usize = 55;
/// Timing reps for the printed table (criterion's own loop runs after).
const REPS: usize = 15;

/// Runs the scheduler mix against `telemetry`, returning the finished
/// runtime for inspection.
fn run_mix(telemetry: TelemetryHandle) -> Runtime {
    let chip = VlsiChip::with_telemetry(8, 8, Cluster::default(), telemetry);
    let mut rt = Runtime::new(chip, Box::new(Fifo), RuntimeConfig::default());
    for spec in mixed_jobs(SEED, JOBS) {
        rt.submit(spec);
    }
    rt.run_until_idle(500_000).expect("mix must drain");
    rt
}

/// One timed run, in microseconds.
fn time_one(make_handle: fn() -> TelemetryHandle) -> u128 {
    let t0 = Instant::now();
    let rt = run_mix(make_handle());
    let span = t0.elapsed().as_micros();
    assert!(rt.stats().completed > 0);
    span
}

/// Median wall times of `REPS` *interleaved* no-op/instrumented runs —
/// interleaving cancels machine drift that back-to-back batches would
/// book against whichever mode ran second.
fn medians() -> (u128, u128) {
    let mut noop = Vec::with_capacity(REPS);
    let mut active = Vec::with_capacity(REPS);
    // Warm-up pair, discarded.
    time_one(TelemetryHandle::disabled);
    time_one(TelemetryHandle::active);
    for _ in 0..REPS {
        noop.push(time_one(TelemetryHandle::disabled));
        active.push(time_one(TelemetryHandle::active));
    }
    noop.sort_unstable();
    active.sort_unstable();
    (noop[REPS / 2], active[REPS / 2])
}

fn bench_ablation(c: &mut Criterion) {
    let mode = if cfg!(feature = "compile-out") {
        "compile-out (sites erased at build time)"
    } else {
        "default build (sites live behind a branch)"
    };
    println!("\nAblation III — telemetry overhead on the {JOBS}-job scheduler mix [{mode}]:");

    let (noop, active) = medians();
    let overhead = if noop > 0 {
        (active as f64 - noop as f64) / noop as f64 * 100.0
    } else {
        0.0
    };
    println!("{:>14} {:>12}", "handle", "median");
    println!("{:>14} {:>10}us", "no-op", noop);
    println!(
        "{:>14} {:>10}us  ({overhead:+.1}% vs no-op)",
        "instrumented", active
    );

    // Telemetry observes; it must not perturb. Same seed, same schedule,
    // whatever the handle.
    let base = run_mix(TelemetryHandle::disabled());
    let instr = run_mix(TelemetryHandle::active());
    assert_eq!(
        base.summary().makespan,
        instr.summary().makespan,
        "recording must not change the schedule"
    );
    assert_eq!(base.events(), instr.events(), "event logs must agree");

    // Two instrumented runs export byte-identical snapshots and traces.
    let again = run_mix(TelemetryHandle::active());
    let (a, b) = (instr.telemetry().snapshot(), again.telemetry().snapshot());
    assert_eq!(a.to_json(), b.to_json(), "snapshot must replay exactly");
    assert_eq!(
        instr.telemetry().trace_chrome_json(),
        again.telemetry().trace_chrome_json(),
        "trace must replay exactly"
    );

    if instr.telemetry().is_enabled() {
        // Not built with compile-out: the registry saw the whole stack.
        for key in ["noc.link_crossings", "core.gathers", "runtime.submissions"] {
            assert!(a.counter(key) > 0, "{key} must record under load");
        }
        println!("\n{}", report::render(&a));
    }

    let mut group = c.benchmark_group("ablation-III");
    group.bench_function("noop", |b| {
        b.iter(|| run_mix(TelemetryHandle::disabled()).summary().makespan);
    });
    group.bench_function("instrumented", |b| {
        b.iter(|| run_mix(TelemetryHandle::active()).summary().makespan);
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);

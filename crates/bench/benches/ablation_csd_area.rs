//! Ablation E: the §2.6.2 area-vs-routability trade-off, end to end.
//!
//! "This approach must consider how much of an area reduction is
//! acceptable to provide sufficient routability." For one array size, the
//! bench sweeps the channel count and reports *both* sides of the trade:
//! the network's λ² area (from `vlsi-cost::csd`) and the rejection rate
//! of random datapaths (from the `vlsi-csd` functional simulator).

use criterion::{criterion_group, criterion_main, Criterion};
use vlsi_cost::csd::{csd_area, csd_area_fraction, flat_area};
use vlsi_csd::CsdSimulator;

fn bench_ablation(c: &mut Criterion) {
    let n = 64usize;
    println!("\nAblation E — CSD area vs routability (N={n}):");
    println!(
        "{:>10} {:>14} {:>12} {:>12}",
        "channels", "area [λ²]", "of AP area", "reject-rate"
    );
    let mut rows = Vec::new();
    for k in [n / 8, n / 4, n / 2, n] {
        let sim = CsdSimulator::new(n, k);
        let u = sim.sweep_point(0.0, 30, 0xCAFE);
        let reject = u.rejected as f64 / (u.rejected + u.granted).max(1) as f64;
        println!(
            "{:>10} {:>14.3e} {:>11.2}% {:>11.1}%",
            k,
            csd_area(n, k),
            csd_area_fraction(n, k) * 100.0,
            reject * 100.0
        );
        rows.push((k, csd_area(n, k), reject));
    }
    println!(
        "{:>10} {:>14.3e}   (flat global network baseline)",
        "flat",
        flat_area(n)
    );
    // The paper's sweet spot: N/2 channels halve the flat network's area
    // at (near-)zero rejection.
    let half = rows.iter().find(|(k, _, _)| *k == n / 2).unwrap();
    assert!(half.1 < flat_area(n) * 0.55);
    assert!(half.2 < 0.02);
    // And area is the price of routability: fewer channels, more rejects.
    assert!(rows[0].2 > rows[2].2);

    c.bench_function("ablation-E/sweep-point", |b| {
        let sim = CsdSimulator::new(n, n / 2);
        b.iter(|| sim.sweep_point(0.0, 5, 1))
    });
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
